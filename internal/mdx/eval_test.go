package mdx

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"whatifolap/internal/algebra"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
)

// TestPaperFig3Query runs the paper's §3.2 example query shape: salary
// for employee Joe by quarter (columns) and state (rows).
func TestPaperFig3Query(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	g, err := ev.Run(`
SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
       {[Location].Levels(0).Members} ON ROWS
FROM Warehouse
WHERE (Organization.[FTE].[Joe], Measures.[Compensation].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCols() != 2 {
		t.Fatalf("cols = %d, want 2", g.NumCols())
	}
	if g.NumRows() != 8 { // NY MA NH CA OR WA TX FL
		t.Fatalf("rows = %d, want 8", g.NumRows())
	}
	// FTE/Joe has salary only in NY in Jan: Q1 = 10, Q2 = ⊥.
	nyRow := -1
	for i, l := range g.RowLabels {
		if strings.HasSuffix(l, "NY") {
			nyRow = i
		}
	}
	if nyRow < 0 {
		t.Fatalf("no NY row in %v", g.RowLabels)
	}
	if got := g.Values[nyRow][0]; got != 10 {
		t.Fatalf("NY/Q1 = %v, want 10", got)
	}
	if !math.IsNaN(g.Values[nyRow][1]) {
		t.Fatalf("NY/Q2 = %v, want ⊥", g.Values[nyRow][1])
	}
	// The rendering contains the ⊥ glyph like the paper's figures.
	if !strings.Contains(g.String(), "⊥") {
		t.Fatal("text rendering should show ⊥")
	}
}

// TestFig4ViaMDX runs the complete extended-MDX pipeline for the
// paper's Fig. 4 scenario on both evaluation paths (algebra over the
// MemStore cube, engine over the chunked cube) and checks the headline
// cells.
func TestFig4ViaMDX(t *testing.T) {
	for name, ev := range map[string]*Evaluator{
		"algebra": NewEvaluator(paperdata.Warehouse()),
		"engine":  NewEvaluator(paperdata.ChunkedWarehouse(nil)),
	} {
		g, err := ev.Run(`
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS,
       {[PTE].Children, [Contractor].Children} DIMENSION PROPERTIES [Organization] ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cell := func(rowSuffix, col string) float64 {
			for i, rl := range g.RowLabels {
				if !strings.HasSuffix(rl, rowSuffix) {
					continue
				}
				for j, cl := range g.ColLabels {
					if cl == col || strings.HasSuffix(cl, "/"+col) {
						return g.Values[i][j]
					}
				}
			}
			t.Fatalf("%s: no cell (%s, %s); rows %v cols %v", name, rowSuffix, col, g.RowLabels, g.ColLabels)
			return 0
		}
		if got := cell("PTE/Joe", "Mar"); got != 30 {
			t.Errorf("%s: (PTE/Joe, Mar) = %v, want 30", name, got)
		}
		if got := cell("PTE/Joe", "Jan"); !math.IsNaN(got) {
			t.Errorf("%s: (PTE/Joe, Jan) = %v, want ⊥", name, got)
		}
		if got := cell("PTE/Joe", "Qtr1"); got != 40 {
			t.Errorf("%s: visual Q1(PTE/Joe) = %v, want 40", name, got)
		}
		if got := cell("Contractor/Joe", "Qtr2"); got != 20 {
			t.Errorf("%s: visual Q2(Contractor/Joe) = %v, want 20 (Apr+Jun)", name, got)
		}
		// DIMENSION PROPERTIES [Organization] reports the parent.
		foundProp := false
		for i, rl := range g.RowLabels {
			if strings.HasSuffix(rl, "PTE/Joe") && len(g.RowProps) > i && g.RowProps[i][0] == "PTE" {
				foundProp = true
			}
		}
		if !foundProp {
			t.Errorf("%s: missing PTE property for PTE/Joe; props = %v", name, g.RowProps)
		}
	}
}

// TestEngineAndAlgebraPathsAgree compares the two evaluation paths
// cell-for-cell on a forward visual query covering the whole grid.
func TestEngineAndAlgebraPathsAgree(t *testing.T) {
	src := `
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS,
       {Descendants([Organization], 1, SELF_AND_AFTER)} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`
	ga, err := NewEvaluator(paperdata.Warehouse()).Run(src)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := NewEvaluator(paperdata.ChunkedWarehouse(nil)).Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if ga.NumRows() != ge.NumRows() || ga.NumCols() != ge.NumCols() {
		t.Fatalf("shapes differ: %dx%d vs %dx%d", ga.NumRows(), ga.NumCols(), ge.NumRows(), ge.NumCols())
	}
	for i := range ga.Values {
		for j := range ga.Values[i] {
			a, e := ga.Values[i][j], ge.Values[i][j]
			if math.IsNaN(a) != math.IsNaN(e) || (!math.IsNaN(a) && math.Abs(a-e) > 1e-9) {
				t.Fatalf("cell (%s, %s): algebra %v, engine %v",
					ga.RowLabels[i], ga.ColLabels[j], a, e)
			}
		}
	}
}

func TestChangesQueryViaMDX(t *testing.T) {
	for name, ev := range map[string]*Evaluator{
		"algebra": NewEvaluator(paperdata.Warehouse()),
		"engine":  NewEvaluator(paperdata.ChunkedWarehouse(nil)),
	} {
		g, err := ev.Run(`
WITH CHANGES {([FTE].[Lisa], [FTE], [PTE], [Apr])} VISUAL
SELECT {[Time].[Qtr2]} ON COLUMNS,
       {[PTE], [FTE]} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Visual Q2: PTE gains Lisa (Tom 30 + Lisa 30); FTE loses her.
		byRow := map[string]float64{}
		for i, rl := range g.RowLabels {
			byRow[rl] = g.Values[i][0]
		}
		if byRow["PTE"] != 60 {
			t.Errorf("%s: Q2(PTE) = %v, want 60", name, byRow["PTE"])
		}
		if byRow["FTE"] != 0 && !math.IsNaN(byRow["FTE"]) {
			// FTE keeps only Joe (no Q2 data) after the move -> ⊥.
			t.Errorf("%s: Q2(FTE) = %v, want ⊥", name, byRow["FTE"])
		}
	}
}

func TestChangesChildrenExpansion(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	// Move all of FTE's children to Contractor in June.
	g, err := ev.Run(`
WITH CHANGES {([FTE].Children, [FTE], [Contractor], [Jun])} VISUAL
SELECT {[Time].[Jun]} ON COLUMNS, {[Contractor]} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	// June contractors: Jane 10 + Joe 10 (already) + Lisa 10 (moved) = 30.
	if got := g.Values[0][0]; got != 30 {
		t.Fatalf("Jun(Contractor) = %v, want 30", got)
	}
}

func TestCombinedChangesAndPerspective(t *testing.T) {
	// Changes apply first, then perspectives negate pre-existing
	// changes: after moving Lisa to PTE in Apr, a static Jan perspective
	// keeps only instances valid in Jan — FTE/Lisa survives (Jan..Mar),
	// PTE/Lisa does not.
	ev := NewEvaluator(paperdata.Warehouse())
	g, err := ev.Run(`
WITH CHANGES {([FTE].[Lisa], [FTE], [PTE], [Apr])}
WITH PERSPECTIVE {(Jan)} FOR Organization STATIC VISUAL
SELECT {Descendants([Time], 2, SELF)} ON COLUMNS,
       {[FTE].[Lisa], [PTE].[Lisa]} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	rowOf := func(suffix string) int {
		for i, rl := range g.RowLabels {
			if strings.HasSuffix(rl, suffix) {
				return i
			}
		}
		t.Fatalf("no row %s in %v", suffix, g.RowLabels)
		return -1
	}
	colOf := func(name string) int {
		for j, cl := range g.ColLabels {
			if cl == name || strings.HasSuffix(cl, "/"+name) {
				return j
			}
		}
		t.Fatalf("no col %s", name)
		return -1
	}
	if got := g.Values[rowOf("FTE/Lisa")][colOf("Feb")]; got != 10 {
		t.Fatalf("(FTE/Lisa, Feb) = %v, want 10", got)
	}
	// PTE/Lisa is dropped by the static Jan perspective.
	for j := range g.ColLabels {
		if v := g.Values[rowOf("PTE/Lisa")][j]; !math.IsNaN(v) {
			t.Fatalf("(PTE/Lisa, %s) = %v, want ⊥", g.ColLabels[j], v)
		}
	}
}

func TestEvaluatorErrors(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	for _, src := range []string{
		`SELECT {[Nonexistent].[X]} ON COLUMNS FROM W`,
		`SELECT {[Joe]} ON COLUMNS FROM W`,                                                               // ambiguous instance name
		`WITH PERSPECTIVE {(Jan)} FOR Location STATIC SELECT {[NY]} ON COLUMNS FROM W`,                   // no binding
		`WITH PERSPECTIVE {(Qtr1)} FOR Organization STATIC SELECT {[NY]} ON COLUMNS FROM W`,              // non-leaf point
		`SELECT {[NY]} ON COLUMNS FROM W WHERE ([MA])`,                                                   // slicer dim on axis
		`WITH CHANGES {([Lisa], [PTE], [FTE], [Apr])} SELECT {[NY]} ON COLUMNS FROM W`,                   // Lisa not under PTE
		`WITH CHANGES {([FTE].[Lisa], [FTE], [Contractor/Jane], [Apr])} SELECT {[NY]} ON COLUMNS FROM W`, // leaf new parent
		`WITH CHANGES {([FTE].[Lisa], [FTE], [East], [Apr])} SELECT {[NY]} ON COLUMNS FROM W`,            // cross-dimension parents
		`SELECT {[Location].[NY].Members} ON COLUMNS FROM W`,                                             // Members on a member
		`SELECT {Head({[NY]}, 3), [Time].[Jan].Levels(0).Members} ON COLUMNS FROM W`,                     // Levels on member
	} {
		if _, err := ev.Run(src); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
}

func TestHeadAndUnionSemantics(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	g, err := ev.Run(`
SELECT {Head({[Time].Levels(0).Members}, 3)} ON COLUMNS,
       {Union({[FTE].Children}, {[FTE].Children})} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCols() != 3 {
		t.Fatalf("Head(…, 3) gave %d columns", g.NumCols())
	}
	if g.NumRows() != 3 { // Joe, Lisa, Sue — duplicates removed
		t.Fatalf("Union dedup gave %d rows, want 3", g.NumRows())
	}
}

func TestDefaultAggregationOverUnmentionedDims(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	// Neither Organization nor Location mentioned: cells aggregate over
	// everything (visual is irrelevant without a scenario).
	g, err := ev.Run(`
SELECT {[Time].[Qtr1]} ON COLUMNS FROM Warehouse WHERE ([Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	// Q1 NY salaries: Joe 10+10+30, Lisa 30, Tom 30, Jane 30 = 140;
	// MA: Lisa 15. Total 155.
	if got := g.Values[0][0]; got != 155 {
		t.Fatalf("grand Q1 = %v, want 155", got)
	}
}

func TestGridCSV(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	g, err := ev.Run(`SELECT {[Time].[Jan]} ON COLUMNS, {[Contractor].Children} ON ROWS FROM W WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	csv := g.CSV()
	if !strings.Contains(csv, "Jan") || !strings.Contains(csv, "Contractor/Jane") {
		t.Fatalf("CSV missing labels:\n%s", csv)
	}
	// ⊥ renders as empty field: Contractor/Joe has no Jan value.
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	for _, ln := range lines {
		if strings.HasPrefix(ln, "Contractor/Joe") && !strings.HasSuffix(ln, ",") {
			t.Fatalf("⊥ should be empty in CSV: %q", ln)
		}
	}
}

// TestMultipleVaryingDimensions runs a query with one perspective
// clause per varying dimension (the paper: "a cube may have several
// varying dimensions"). Both Org-like dimensions vary over the same
// Time dimension; each clause negates one dimension's changes.
func TestMultipleVaryingDimensions(t *testing.T) {
	org := dimension.New("Org", false)
	org.MustAdd("", "A")
	org.MustAdd("A", "x")
	org.MustAdd("", "B")
	org.MustAdd("B", "x")
	proj := dimension.New("Project", false)
	proj.MustAdd("", "P1")
	proj.MustAdd("P1", "t")
	proj.MustAdd("", "P2")
	proj.MustAdd("P2", "t")
	tim := dimension.New("Time", true)
	for _, m := range []string{"t0", "t1", "t2", "t3"} {
		tim.MustAdd("", m)
	}
	c := cube.New(org, tim, proj)
	b1 := dimension.NewBinding(org, tim)
	b1.SetVS(org.MustLookup("A/x"), 0, 1)
	b1.SetVS(org.MustLookup("B/x"), 2, 3)
	b2 := dimension.NewBinding(proj, tim)
	b2.SetVS(proj.MustLookup("P1/t"), 0, 2)
	b2.SetVS(proj.MustLookup("P2/t"), 1, 3)
	if err := c.AddBinding(b1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddBinding(b2); err != nil {
		t.Fatal(err)
	}
	set := func(orgRef string, m int, projRef string, v float64) {
		c.SetValue([]dimension.MemberID{
			org.MustLookup(orgRef), tim.Leaf(m).ID, proj.MustLookup(projRef),
		}, v)
	}
	set("A/x", 0, "P1/t", 1)
	set("A/x", 1, "P2/t", 2)
	set("B/x", 2, "P1/t", 4)
	set("B/x", 3, "P2/t", 8)

	ev := NewEvaluator(c)
	g, err := ev.Run(`
WITH PERSPECTIVE {(t0)} FOR Org DYNAMIC FORWARD VISUAL
WITH PERSPECTIVE {(t0)} FOR Project DYNAMIC FORWARD VISUAL
SELECT {[Time].Members} ON COLUMNS, {[A].[x]} ON ROWS
FROM C
WHERE ([Project].[P1].[t])`)
	if err != nil {
		t.Fatal(err)
	}
	// After both forward perspectives at t0, everything lands on A/x
	// and P1/t: the row holds 1, 2, 4, 8 across t0..t3.
	want := map[string]float64{"t0": 1, "t1": 2, "t2": 4, "t3": 8}
	for j, cl := range g.ColLabels {
		if w, ok := want[cl]; ok {
			if got := g.Values[0][j]; got != w {
				t.Fatalf("(A/x, %s) = %v, want %v", cl, got, w)
			}
		}
	}
	// Duplicate clause for the same dimension is rejected.
	if _, err := Parse(`
WITH PERSPECTIVE {(t0)} FOR Org STATIC
WITH PERSPECTIVE {(t1)} FOR Org STATIC
SELECT {x} ON COLUMNS FROM C`); err == nil {
		t.Fatal("duplicate perspective dimension should fail")
	}
}

func TestNonEmptyAxes(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	// Without NON EMPTY: Sue and Dave (inactive) appear as all-⊥ rows,
	// and Qtr3/Qtr4 columns are empty.
	full, err := ev.Run(`
SELECT {[Time].Children} ON COLUMNS,
       {Descendants([Organization], 2, SELF)} ON ROWS
FROM W WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := ev.Run(`
SELECT NON EMPTY {[Time].Children} ON COLUMNS,
       NON EMPTY {Descendants([Organization], 2, SELF)} ON ROWS
FROM W WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumRows() != 8 || filtered.NumRows() != 6 {
		t.Fatalf("rows = %d/%d, want 8 full and 6 filtered (Sue and Dave dropped)",
			full.NumRows(), filtered.NumRows())
	}
	if full.NumCols() != 4 || filtered.NumCols() != 2 {
		t.Fatalf("cols = %d/%d, want 4 full and 2 filtered (Qtr3/Qtr4 dropped)",
			full.NumCols(), filtered.NumCols())
	}
	for _, rl := range filtered.RowLabels {
		if strings.HasSuffix(rl, "Sue") || strings.HasSuffix(rl, "Dave") {
			t.Fatalf("inactive member %s survived NON EMPTY", rl)
		}
	}
	// NON must be followed by EMPTY.
	if _, err := Parse(`SELECT NON {x} ON COLUMNS FROM A`); err == nil {
		t.Fatal("bare NON should fail")
	}
}

func BenchmarkRunFig4Query(b *testing.B) {
	ev := NewEvaluator(paperdata.ChunkedWarehouse(nil))
	q := MustParse(`
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS,
       {[PTE].Children} ON ROWS
FROM Warehouse WHERE ([Location].[NY], [Measures].[Salary])`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.RunQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunQueryStatsEnginePath(t *testing.T) {
	ev := NewEvaluator(paperdata.ChunkedWarehouse(nil))
	q := MustParse(`
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD
SELECT {[Time].[Qtr1]} ON COLUMNS, {[PTE].[Joe]} ON ROWS
FROM W WHERE ([Location].[NY], [Measures].[Salary])`)
	_, stats, err := ev.RunQueryStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChunksRead == 0 || stats.SourceInstances == 0 {
		t.Fatalf("engine path should populate stats: %+v", stats)
	}
	// The algebra path reports zero engine stats.
	ev2 := NewEvaluator(paperdata.Warehouse())
	_, stats2, err := ev2.RunQueryStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.ChunksRead != 0 {
		t.Fatalf("algebra path should not report chunk reads: %+v", stats2)
	}
}

func TestAggregateSlicerMember(t *testing.T) {
	// A non-leaf member in the slicer aggregates over its subtree: East
	// = NY + MA + NH.
	ev := NewEvaluator(paperdata.Warehouse())
	g, err := ev.Run(`
SELECT {[Time].[Qtr1]} ON COLUMNS, {[FTE].[Lisa]} ON ROWS
FROM W WHERE ([Location].[East], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	// Lisa Q1: NY 30 + MA 15 = 45.
	if got := g.Values[0][0]; got != 45 {
		t.Fatalf("Lisa Q1 under East = %v, want 45", got)
	}
}

func TestDimensionPropertyForAbsentDimension(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	g, err := ev.Run(`
SELECT {[Time].[Jan]} ON COLUMNS,
       {[FTE].[Lisa]} DIMENSION PROPERTIES [Measures] ON ROWS
FROM W WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	// Measures is not on the row axis, so the property is empty rather
	// than an error.
	if len(g.RowProps) != 1 || g.RowProps[0][0] != "" {
		t.Fatalf("RowProps = %v, want one empty value", g.RowProps)
	}
}

func TestLookupPartsWalksChildren(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	// Head-then-walk resolution: [East].[NY] resolves East by name and
	// then walks down to the child.
	g, err := ev.Run(`
SELECT {[Time].[Jan]} ON COLUMNS, {[East].[NY]} ON ROWS
FROM W WHERE ([Organization].[FTE].[Lisa], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Values[0][0]; got != 10 {
		t.Fatalf("(Lisa, NY, Jan) = %v, want 10", got)
	}
	// Missing child errors cleanly.
	if _, err := ev.Run(`SELECT {[East].[Chicago]} ON COLUMNS FROM W`); err == nil {
		t.Fatal("missing child should fail")
	}
	// Deep qualified paths with the dimension prefix work too.
	if _, err := ev.Run(`SELECT {[Location].[East].[NY]} ON COLUMNS FROM W WHERE ([Measures].[Salary])`); err != nil {
		t.Fatal(err)
	}
}

func TestEvalSetEdgeCases(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	// Empty set literal is legal and yields an empty axis.
	g, err := ev.Run(`SELECT {} ON COLUMNS, {[FTE].[Lisa]} ON ROWS FROM W WHERE ([Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCols() != 0 {
		t.Fatalf("empty set gave %d columns", g.NumCols())
	}
	// Member functions are rejected inside tuples.
	if _, err := ev.Run(`SELECT {([FTE].Children, [NY])} ON COLUMNS FROM W`); err == nil {
		t.Fatal("function inside tuple should fail")
	}
	// Head with negative count (parser only accepts literals, so build
	// the AST directly).
	if _, err := ev.evalSet(ev.cube, &Head{Set: &SetLiteral{}, N: -1}); err == nil {
		t.Fatal("negative Head should fail")
	}
	// Descendants with AFTER flag.
	ts, err := ev.evalSet(ev.cube, MustParse(
		`SELECT {Descendants([Time], 1, AFTER)} ON COLUMNS FROM W`).Axes[0].Set)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 12 { // strictly below the quarters: the months
		t.Fatalf("Descendants AFTER = %d tuples, want 12", len(ts))
	}
	// Union/CrossJoin propagate resolution errors from either side.
	for _, src := range []string{
		`SELECT {Union({[Nope]}, {[NY]})} ON COLUMNS FROM W`,
		`SELECT {Union({[NY]}, {[Nope]})} ON COLUMNS FROM W`,
		`SELECT {CrossJoin({[Nope]}, {[NY]})} ON COLUMNS FROM W`,
		`SELECT {CrossJoin({[NY]}, {[Nope]})} ON COLUMNS FROM W`,
		`SELECT {Head({[Nope]}, 1)} ON COLUMNS FROM W`,
		`SELECT {Descendants([Nope])} ON COLUMNS FROM W`,
	} {
		if _, err := ev.Run(src); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
}

func TestResolveChangesErrors(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	for _, src := range []string{
		// Unknown old parent.
		`WITH CHANGES {([Lisa], [Nope], [PTE], [Apr])} SELECT {[NY]} ON COLUMNS FROM W`,
		// Parents across dimensions.
		`WITH CHANGES {([Lisa], [FTE], [East], [Apr])} SELECT {[NY]} ON COLUMNS FROM W`,
		// Non-leaf change moment.
		`WITH CHANGES {([Lisa], [FTE], [PTE], [Qtr2])} SELECT {[NY]} ON COLUMNS FROM W`,
		// Unknown moment.
		`WITH CHANGES {([Lisa], [FTE], [PTE], [Smarch])} SELECT {[NY]} ON COLUMNS FROM W`,
		// Change member set in the wrong dimension.
		`WITH CHANGES {([East].Children, [FTE], [PTE], [Apr])} SELECT {[NY]} ON COLUMNS FROM W`,
		// Changes spanning two varying dimensions in one clause.
		`WITH CHANGES {([Lisa], [FTE], [PTE], [Apr]), ([NY], [East], [West], [Apr])} SELECT {[Jan]} ON COLUMNS FROM W`,
		// Non-leaf change member.
		`WITH CHANGES {([FTE], [Organization], [PTE], [Apr])} SELECT {[NY]} ON COLUMNS FROM W`,
	} {
		if _, err := ev.Run(src); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
}

// TestTransferClause runs the paper's §1 data-driven scenario end to
// end through extended MDX: 10% of PTE Q1 salaries move from NY to MA.
func TestTransferClause(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	g, err := ev.Run(`
WITH TRANSFER 0.10 FROM [NY] TO [MA] FOR ([Organization].[PTE], [Time].[Qtr1], [Measures].[Salary])
SELECT {[Location].[NY], [Location].[MA]} ON COLUMNS,
       {[PTE].[Tom]} ON ROWS
FROM Warehouse
WHERE ([Time].[Jan], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Values[0][0]; got != 9 {
		t.Fatalf("(Tom, NY, Jan) = %v, want 9", got)
	}
	if got := g.Values[0][1]; got != 1 {
		t.Fatalf("(Tom, MA, Jan) = %v, want 1", got)
	}
	// Transfers compose with structural scenarios.
	g2, err := ev.Run(`
WITH TRANSFER 0.5 FROM [NY] TO [MA] FOR ([Measures].[Salary])
WITH PERSPECTIVE {(Feb)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {[Time].[Qtr1].[Mar]} ON COLUMNS, {[PTE].[Joe]} ON ROWS
FROM W WHERE ([Location].[MA], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	// Contractor/Joe's Mar salary 30 halves to MA (15), then forward at
	// Feb relocates it to PTE/Joe.
	if got := g2.Values[0][0]; got != 15 {
		t.Fatalf("(PTE/Joe, Mar, MA) = %v, want 15", got)
	}
}

func TestTransferClauseErrors(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	for _, src := range []string{
		`WITH TRANSFER FROM [NY] TO [MA] SELECT {[Jan]} ON COLUMNS FROM W`,       // missing fraction
		`WITH TRANSFER 0.1 FROM [NY] SELECT {[Jan]} ON COLUMNS FROM W`,           // missing TO
		`WITH TRANSFER 0.1 FROM [NY] TO [Jan] SELECT {[Feb]} ON COLUMNS FROM W`,  // cross-dimension
		`WITH TRANSFER 1.5 FROM [NY] TO [MA] SELECT {[Jan]} ON COLUMNS FROM W`,   // bad fraction
		`WITH TRANSFER 0.1 FROM [Nope] TO [MA] SELECT {[Jan]} ON COLUMNS FROM W`, // unknown member
		`WITH TRANSFER 0.1 FROM [NY] TO [MA] FOR ([Nope]) SELECT {[Jan]} ON COLUMNS FROM W`,
	} {
		if _, err := ev.Run(src); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
}

func TestExplain(t *testing.T) {
	// Algebra path with rewrites.
	ev := NewEvaluator(paperdata.Warehouse())
	q := MustParse(`
WITH PERSPECTIVE {(Jan), (Jan)} FOR Organization STATIC
SELECT {[Time].[Qtr1]} ON COLUMNS FROM W WHERE ([Measures].[Salary])`)
	ex, err := ev.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "path: algebra") || !strings.Contains(ex, "static-as-selection") {
		t.Fatalf("explain missing rewrite info:\n%s", ex)
	}
	// Engine path.
	ev2 := NewEvaluator(paperdata.ChunkedWarehouse(nil))
	ex2, err := ev2.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex2, "perspective-cube engine") {
		t.Fatalf("chunked cube should explain the engine path:\n%s", ex2)
	}
	// No-rewrite case.
	q3 := MustParse(`SELECT {[Time].[Jan]} ON COLUMNS FROM W`)
	ex3, err := ev.Explain(q3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex3, "no rewrites") {
		t.Fatalf("plain query should report no rewrites:\n%s", ex3)
	}
}

// TestGoldenFig2Rendering snapshots the text rendering of the Fig. 2
// slice to guard the grid formatter (labels, alignment, the ⊥ glyph).
func TestGoldenFig2Rendering(t *testing.T) {
	ev := NewEvaluator(paperdata.Warehouse())
	g, err := ev.Run(`
SELECT {[Time].[Qtr1].Children} ON COLUMNS,
       {[FTE].[Joe], [PTE].[Joe], [Contractor].[Joe]} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	want := "" +
		"                Qtr1/Jan  Qtr1/Feb  Qtr1/Mar\n" +
		"FTE/Joe         10        ⊥       ⊥     \n" +
		"PTE/Joe         ⊥       10        ⊥     \n" +
		"Contractor/Joe  ⊥       ⊥       30      \n"
	if got := g.String(); got != want {
		t.Fatalf("rendering drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestTheorem41RandomQueries checks the paper's Theorem 4.1 on
// randomized queries: for every extended-MDX what-if query Qn there is
// an algebra expression En with Qn(Cin) = En(Q(Cin)). The evaluator's
// grid must match cells computed by composing ApplyChanges /
// ApplyPerspectives / CellValue by hand.
func TestTheorem41RandomQueries(t *testing.T) {
	semNames := []string{"STATIC", "DYNAMIC FORWARD", "EXTENDED DYNAMIC FORWARD",
		"DYNAMIC BACKWARD", "EXTENDED DYNAMIC BACKWARD"}
	sems := []perspective.Semantics{perspective.Static, perspective.Forward,
		perspective.ExtendedForward, perspective.Backward, perspective.ExtendedBackward}
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		si := r.Intn(len(sems))
		k := 1 + r.Intn(3)
		pts := make([]string, k)
		ords := make([]int, k)
		for i := range pts {
			o := r.Intn(12)
			pts[i] = "(" + months[o] + ")"
			ords[i] = o
		}
		modeName, mode := "NONVISUAL", perspective.NonVisual
		if r.Intn(2) == 0 {
			modeName, mode = "VISUAL", perspective.Visual
		}
		withChanges := r.Intn(2) == 0
		changesClause := ""
		var changes []algebra.Change
		if withChanges {
			at := 1 + r.Intn(10)
			changesClause = "WITH CHANGES {([FTE].[Lisa], [FTE], [Contractor], [" + months[at] + "])}\n"
			changes = []algebra.Change{{Member: "Lisa", OldParent: "FTE", NewParent: "Contractor", T: at}}
		}
		src := changesClause +
			"WITH PERSPECTIVE {" + strings.Join(pts, ", ") + "} FOR Organization " +
			semNames[si] + " " + modeName + "\n" +
			`SELECT {[Time].[Qtr1], [Time].[Qtr2]} ON COLUMNS,
			 {[PTE].Children, [Contractor].Children} ON ROWS
			 FROM W WHERE ([Location].[NY], [Measures].[Salary])`

		cin := paperdata.Warehouse()
		g, err := NewEvaluator(cin).Run(src)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Hand-composed pipeline.
		work := cin
		if withChanges {
			work, err = algebra.ApplyChanges(work, "Organization", changes)
			if err != nil {
				t.Log(err)
				return false
			}
		}
		out, err := algebra.ApplyPerspectives(work, "Organization", sems[si], ords)
		if err != nil {
			t.Log(err)
			return false
		}
		org := out.DimByName("Organization")
		loc := out.DimByName("Location")
		tim := out.DimByName("Time")
		meas := out.DimByName("Measures")
		var rows []dimension.MemberID
		for _, parent := range []string{"PTE", "Contractor"} {
			rows = append(rows, org.Member(org.MustLookup(parent)).Children...)
		}
		if len(rows) != g.NumRows() {
			t.Logf("seed %d: row counts %d vs %d", seed, len(rows), g.NumRows())
			return false
		}
		for i, rid := range rows {
			for j, q := range []string{"Qtr1", "Qtr2"} {
				want, err := algebra.CellValue(cin, out, []dimension.MemberID{
					rid, loc.MustLookup("NY"), tim.MustLookup(q), meas.MustLookup("Salary"),
				}, mode)
				if err != nil {
					t.Log(err)
					return false
				}
				got := g.Values[i][j]
				if math.IsNaN(want) != math.IsNaN(got) || (!math.IsNaN(want) && math.Abs(want-got) > 1e-9) {
					t.Logf("seed %d (%s): cell (%s, %s) = %v, want %v",
						seed, semNames[si], g.RowLabels[i], q, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
