// Package mdx implements the paper's extended MDX: the classic
// SELECT … ON COLUMNS/ROWS … FROM … WHERE … query surface plus the
// what-if prefixes of §3.3 and §3.4:
//
//	WITH PERSPECTIVE {(Jan), (Jul)} FOR Department STATIC [VISUAL|NONVISUAL]
//	WITH PERSPECTIVE {(Jan), (Apr)} FOR Department DYNAMIC FORWARD …
//	WITH CHANGES {([FTE].[Lisa], [FTE], [PTE], [Apr]), …} [VISUAL|NONVISUAL]
//
// The supported set algebra covers the constructs the paper's
// experimental queries use (Fig. 10): CrossJoin, Union, Head, Children,
// Members, Levels(n).Members, Descendants(m, layer, flag), literal sets
// and tuples.
package mdx

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokBracketed // [ ... ]
	tokNumber
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokDot
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokBracketed:
		return "bracketed name"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes extended-MDX source.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// errorf produces a positioned lexical/syntax error.
func (l *lexer) errorf(pos int, format string, args ...interface{}) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("mdx: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '{':
		l.pos++
		return token{tokLBrace, "{", start}, nil
	case c == '}':
		l.pos++
		return token{tokRBrace, "}", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == '[':
		end := strings.IndexByte(l.src[l.pos:], ']')
		if end < 0 {
			return token{}, l.errorf(start, "unterminated '['")
		}
		name := l.src[l.pos+1 : l.pos+end]
		l.pos += end + 1
		if name == "" {
			return token{}, l.errorf(start, "empty bracketed name")
		}
		return token{tokBracketed, name, start}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
			l.pos++
		}
		// Optional decimal part (e.g. the 0.10 of a TRANSFER clause).
		if l.pos+1 < len(l.src) && l.src[l.pos] == '.' &&
			l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9') {
				l.pos++
			}
		}
		return token{tokNumber, l.src[start:l.pos], start}, nil
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], start}, nil
	default:
		return token{}, l.errorf(start, "unexpected character %q", c)
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// keywordIs reports a case-insensitive identifier match.
func keywordIs(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
