package mdx

import (
	"context"
	"math"
	"strings"
	"testing"

	"whatifolap/internal/paperdata"
	"whatifolap/internal/trace"
)

const explainTestQuery = `
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS,
       {Descendants([Organization], 1, SELF_AND_AFTER)} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`

func TestParseExplainPrefix(t *testing.T) {
	q, err := Parse("EXPLAIN " + explainTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain || q.Analyze {
		t.Fatalf("EXPLAIN: Explain=%v Analyze=%v, want true/false", q.Explain, q.Analyze)
	}
	q, err = Parse("explain analyze " + explainTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain || !q.Analyze {
		t.Fatalf("EXPLAIN ANALYZE: Explain=%v Analyze=%v, want true/true", q.Explain, q.Analyze)
	}
	q, err = Parse(explainTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain || q.Analyze {
		t.Fatal("plain query should not be marked EXPLAIN")
	}
	// The keywords normalize like any other, so cache keys stay sound.
	norm, err := Normalize("explain analyze SELECT [Time].Members ON COLUMNS FROM W")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(norm, "EXPLAIN ANALYZE ") {
		t.Fatalf("normalize did not fold the prefix: %q", norm)
	}
}

func TestExplainAnalyzeOutput(t *testing.T) {
	ev := NewEvaluator(paperdata.ChunkedWarehouse(nil))
	q := MustParse("EXPLAIN ANALYZE " + explainTestQuery)
	text, g, stats, err := ev.ExplainAnalyze(RunContext{}, q)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || g.NumRows() == 0 {
		t.Fatal("EXPLAIN ANALYZE did not execute the query")
	}
	if stats.ChunksRead == 0 {
		t.Fatalf("stats not collected: %+v", stats)
	}
	for _, want := range []string{"eval", "plan", "scan", "project", "totals:", "stats:", "chunks_read"} {
		if !strings.Contains(text, want) {
			t.Fatalf("analysis missing %q:\n%s", want, text)
		}
	}
}

// TestExplainAnalyzeTotalsMatchStats pins the contract between the two
// timing systems: summing span durations by stage name must agree with
// the engine's core.Stats per-stage wall times within 5% (plus a small
// absolute floor, since sub-millisecond stages on the tiny fixture are
// dominated by clock resolution, not drift).
func TestExplainAnalyzeTotalsMatchStats(t *testing.T) {
	ev := NewEvaluator(paperdata.ChunkedWarehouse(nil))
	q := MustParse(explainTestQuery)

	tr := trace.New(0)
	root := tr.Start(trace.SpanRef{}, "eval")
	ctx := trace.WithSpan(trace.NewContext(context.Background(), tr), root)
	_, stats, err := ev.RunQueryStatsWith(RunContext{Ctx: ctx, Workers: 4}, q)
	root.End()
	if err != nil {
		t.Fatal(err)
	}

	check := func(stage string, statMs float64) {
		spanMs := tr.StageMs(stage)
		tol := 0.05 * math.Max(spanMs, statMs)
		if tol < 0.5 { // clock-resolution floor for sub-ms stages
			tol = 0.5
		}
		if math.Abs(spanMs-statMs) > tol {
			t.Errorf("stage %s: trace %.3fms vs stats %.3fms exceeds 5%% (tol %.3fms)",
				stage, spanMs, statMs, tol)
		}
	}
	check("plan", stats.PlanMs)
	check("scan", stats.ScanMs)
	check("merge", stats.MergeMs)
	check("project", stats.ProjectMs)

	if stats.ScanWorkers < 2 {
		t.Fatalf("expected a parallel scan, got %d workers", stats.ScanWorkers)
	}
	// The parallel scan records one child span per merge group, and the
	// groups' chunk counters sum to the scan total.
	var groups, groupChunks int64
	for _, s := range tr.Spans() {
		if s.Name != "group" {
			continue
		}
		groups++
		if v, ok := s.Attr("chunks_read"); ok {
			groupChunks += v
		}
	}
	if groups == 0 {
		t.Fatal("no per-merge-group spans recorded")
	}
	if groupChunks != int64(stats.ChunksRead) {
		t.Fatalf("group spans account for %d chunk reads, stats say %d", groupChunks, stats.ChunksRead)
	}
}
