package mdx

import "testing"

// FuzzParse asserts the extended-MDX parser never panics, whatever the
// input. Errors are the expected outcome for garbage.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"select {x} on columns from [A]",
		"WITH perspective {(Jan)} for D STATIC select {x} on columns from [A]",
		"WITH CHANGES {([a],[b],[c],[d])} select {x} on columns from [A] where (y)",
		"select NON EMPTY {CrossJoin({a},Union({b},Head(Descendants([c],1,SELF),3)))} on columns from [A]",
		"select {[A].Levels(0).Members} on columns, {[B].Children} DIMENSION PROPERTIES [D] on rows from [W]",
		"select {", "WITH", "{{{{", "[[", "(((", "}}}}", "select {x} on",
		"-- comment only", "select {1e99999} on columns from [A]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Fatal("nil query without error")
		}
	})
}
