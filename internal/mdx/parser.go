package mdx

import (
	"strconv"
	"strings"

	"whatifolap/internal/perspective"
)

// Parse parses an extended-MDX query.
func Parse(src string) (*Query, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s %q after query", p.tok.kind, p.tok.text)
	}
	return q, nil
}

// MustParse is Parse that panics on error, for statically known queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return p.lex.errorf(p.tok.pos, format, args...)
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errorf("expected %s, found %s %q", kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if !keywordIs(p.tok, kw) {
		return p.errorf("expected %q, found %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) acceptKeyword(kw string) bool {
	if keywordIs(p.tok, kw) {
		if err := p.advance(); err != nil {
			return false
		}
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.acceptKeyword("EXPLAIN") {
		q.Explain = true
		if p.acceptKeyword("ANALYZE") {
			q.Analyze = true
		}
	}
	for keywordIs(p.tok, "WITH") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case keywordIs(p.tok, "PERSPECTIVE"):
			pc, err := p.parsePerspectiveClause()
			if err != nil {
				return nil, err
			}
			for _, prev := range q.Perspectives {
				if prev.Varying == pc.Varying {
					return nil, p.errorf("duplicate PERSPECTIVE clause for dimension %q", pc.Varying)
				}
			}
			q.Perspectives = append(q.Perspectives, pc)
		case keywordIs(p.tok, "CHANGES"):
			if q.Changes != nil {
				return nil, p.errorf("duplicate CHANGES clause")
			}
			cc, err := p.parseChangesClause()
			if err != nil {
				return nil, err
			}
			q.Changes = cc
		case keywordIs(p.tok, "TRANSFER"):
			tc, err := p.parseTransferClause()
			if err != nil {
				return nil, err
			}
			q.Transfers = append(q.Transfers, tc)
		default:
			return nil, p.errorf("expected PERSPECTIVE or CHANGES after WITH, found %q", p.tok.text)
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		axis, props, err := p.parseAxis()
		if err != nil {
			return nil, err
		}
		q.Axes = append(q.Axes, axis)
		q.DimProperties = append(q.DimProperties, props...)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseMember()
	if err != nil {
		return nil, err
	}
	q.From = from.Parts
	if p.acceptKeyword("WHERE") {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		for {
			m, err := p.parseMember()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, m)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// parsePerspectiveClause parses
// "PERSPECTIVE {(p1), …} FOR <dim> <semantics> [<mode>]"
// with PERSPECTIVE already current.
func (p *parser) parsePerspectiveClause() (*PerspectiveClause, error) {
	if err := p.advance(); err != nil { // consume PERSPECTIVE
		return nil, err
	}
	set, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	points, err := flattenMembers(set)
	if err != nil {
		return nil, p.errorf("perspective set must contain single members: %v", err)
	}
	pc := &PerspectiveClause{Points: points, Mode: perspective.NonVisual}
	if err := p.expectKeyword("FOR"); err != nil {
		return nil, err
	}
	dim, err := p.parseMember()
	if err != nil {
		return nil, err
	}
	pc.Varying = strings.Join(dim.Parts, "/")

	// Semantics: STATIC | [EXTENDED] [DYNAMIC] FORWARD|BACKWARD.
	extended := p.acceptKeyword("EXTENDED")
	switch {
	case !extended && p.acceptKeyword("STATIC"):
		pc.Sem = perspective.Static
	default:
		p.acceptKeyword("DYNAMIC") // optional noise word
		switch {
		case p.acceptKeyword("FORWARD"):
			if extended {
				pc.Sem = perspective.ExtendedForward
			} else {
				pc.Sem = perspective.Forward
			}
		case p.acceptKeyword("BACKWARD"):
			if extended {
				pc.Sem = perspective.ExtendedBackward
			} else {
				pc.Sem = perspective.Backward
			}
		default:
			return nil, p.errorf("expected STATIC, FORWARD or BACKWARD, found %q", p.tok.text)
		}
	}
	if m, ok := p.parseOptionalMode(); ok {
		pc.Mode = m
	}
	return pc, nil
}

// parseChangesClause parses "CHANGES {(m,o,n,t), …} [<mode>]" with
// CHANGES already current.
func (p *parser) parseChangesClause() (*ChangesClause, error) {
	if err := p.advance(); err != nil { // consume CHANGES
		return nil, err
	}
	cc := &ChangesClause{Mode: perspective.NonVisual}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		row := &ChangeRow{}
		m, err := p.parseSetElement()
		if err != nil {
			return nil, err
		}
		row.Member = m
		for _, dst := range []**MemberExpr{&row.Old, &row.New, &row.At} {
			if _, err := p.expect(tokComma); err != nil {
				return nil, err
			}
			me, err := p.parseMember()
			if err != nil {
				return nil, err
			}
			*dst = me
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		cc.Rows = append(cc.Rows, row)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if m, ok := p.parseOptionalMode(); ok {
		cc.Mode = m
	}
	return cc, nil
}

// parseTransferClause parses
// "TRANSFER <fraction> FROM <member> TO <member> [FOR (m1, m2, …)]"
// with TRANSFER current.
func (p *parser) parseTransferClause() (*TransferClause, error) {
	if err := p.advance(); err != nil { // consume TRANSFER
		return nil, err
	}
	t, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	frac, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return nil, p.errorf("bad fraction %q", t.text)
	}
	tc := &TransferClause{Fraction: frac}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if tc.From, err = p.parseMember(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	if tc.To, err = p.parseMember(); err != nil {
		return nil, err
	}
	if p.acceptKeyword("FOR") {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		for {
			m, err := p.parseMember()
			if err != nil {
				return nil, err
			}
			tc.Scope = append(tc.Scope, m)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	return tc, nil
}

func (p *parser) parseOptionalMode() (perspective.Mode, bool) {
	switch {
	case p.acceptKeyword("VISUAL"):
		return perspective.Visual, true
	case p.acceptKeyword("NONVISUAL"), p.acceptKeyword("NON-VISUAL"):
		return perspective.NonVisual, true
	}
	return perspective.NonVisual, false
}

// parseAxis parses
// "[NON EMPTY] <set> [DIMENSION PROPERTIES m] ON <name>".
func (p *parser) parseAxis() (Axis, []string, error) {
	nonEmpty := false
	if p.acceptKeyword("NON") {
		if err := p.expectKeyword("EMPTY"); err != nil {
			return Axis{}, nil, err
		}
		nonEmpty = true
	}
	set, err := p.parseSet()
	if err != nil {
		return Axis{}, nil, err
	}
	var props []string
	if p.acceptKeyword("DIMENSION") {
		if err := p.expectKeyword("PROPERTIES"); err != nil {
			return Axis{}, nil, err
		}
		// A single property reference; a comma after it would be
		// ambiguous with the axis separator, so multi-property lists
		// are written as repeated DIMENSION PROPERTIES clauses.
		m, err := p.parseMember()
		if err != nil {
			return Axis{}, nil, err
		}
		props = append(props, strings.Join(m.Parts, "/"))
	}
	if err := p.expectKeyword("ON"); err != nil {
		return Axis{}, nil, err
	}
	switch {
	case p.acceptKeyword("COLUMNS"):
		return Axis{Set: set, Name: "COLUMNS", NonEmpty: nonEmpty}, props, nil
	case p.acceptKeyword("ROWS"):
		return Axis{Set: set, Name: "ROWS", NonEmpty: nonEmpty}, props, nil
	}
	return Axis{}, nil, p.errorf("expected COLUMNS or ROWS, found %q", p.tok.text)
}

// parseSet parses a set expression.
func (p *parser) parseSet() (SetExpr, error) {
	return p.parseSetElement()
}

func (p *parser) parseSetElement() (SetExpr, error) {
	switch {
	case p.tok.kind == tokLBrace:
		if err := p.advance(); err != nil {
			return nil, err
		}
		lit := &SetLiteral{}
		if p.tok.kind == tokRBrace { // empty set
			return lit, p.advance()
		}
		for {
			e, err := p.parseSetElement()
			if err != nil {
				return nil, err
			}
			lit.Elems = append(lit.Elems, e)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		return lit, nil

	case p.tok.kind == tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		tup := &TupleExpr{}
		for {
			m, err := p.parseMember()
			if err != nil {
				return nil, err
			}
			tup.Members = append(tup.Members, m)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return tup, nil

	case keywordIs(p.tok, "CROSSJOIN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		l, r, err := p.parseTwoSetArgs()
		if err != nil {
			return nil, err
		}
		return &CrossJoin{L: l, R: r}, nil

	case keywordIs(p.tok, "UNION"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		l, r, err := p.parseTwoSetArgs()
		if err != nil {
			return nil, err
		}
		return &Union{L: l, R: r}, nil

	case keywordIs(p.tok, "HEAD"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		s, err := p.parseSetElement()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &Head{Set: s, N: n}, nil

	case keywordIs(p.tok, "DESCENDANTS"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		m, err := p.parseMember()
		if err != nil {
			return nil, err
		}
		d := &Descendants{Of: m, Layer: -1, Flag: DescSelfAndAfter}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			d.Layer, err = p.parseInt()
			if err != nil {
				return nil, err
			}
			d.Flag = DescSelf
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				switch {
				case p.acceptKeyword("SELF_AND_AFTER"):
					d.Flag = DescSelfAndAfter
				case p.acceptKeyword("AFTER"):
					d.Flag = DescAfter
				case p.acceptKeyword("SELF"):
					d.Flag = DescSelf
				default:
					return nil, p.errorf("expected SELF, AFTER or SELF_AND_AFTER, found %q", p.tok.text)
				}
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return d, nil

	default:
		return p.parseMember()
	}
}

func (p *parser) parseTwoSetArgs() (SetExpr, SetExpr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, nil, err
	}
	l, err := p.parseSetElement()
	if err != nil {
		return nil, nil, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return nil, nil, err
	}
	r, err := p.parseSetElement()
	if err != nil {
		return nil, nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errorf("bad number %q", t.text)
	}
	return n, nil
}

// parseMember parses a member path with an optional trailing function:
// [A].[B].[C], [A].Members, [A].Children, [A].Levels(0).Members.
func (p *parser) parseMember() (*MemberExpr, error) {
	m := &MemberExpr{}
	for {
		switch p.tok.kind {
		case tokBracketed, tokIdent:
			// Trailing functions terminate the path.
			if p.tok.kind == tokIdent {
				switch strings.ToUpper(p.tok.text) {
				case "MEMBERS":
					if len(m.Parts) == 0 {
						return nil, p.errorf("Members without a member path")
					}
					m.Fn = "Members"
					return m, p.advance()
				case "CHILDREN":
					if len(m.Parts) == 0 {
						return nil, p.errorf("Children without a member path")
					}
					m.Fn = "Children"
					return m, p.advance()
				case "LEVELS":
					if len(m.Parts) == 0 {
						return nil, p.errorf("Levels without a member path")
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
					if _, err := p.expect(tokLParen); err != nil {
						return nil, err
					}
					lv, err := p.parseInt()
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(tokRParen); err != nil {
						return nil, err
					}
					if _, err := p.expect(tokDot); err != nil {
						return nil, err
					}
					if !p.acceptKeyword("MEMBERS") {
						return nil, p.errorf("expected Members after Levels(n)., found %q", p.tok.text)
					}
					m.Fn = "Levels"
					m.Level = lv
					return m, nil
				}
			}
			m.Parts = append(m.Parts, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			if len(m.Parts) == 0 {
				return nil, p.errorf("expected member reference, found %s %q", p.tok.kind, p.tok.text)
			}
			return m, nil
		}
		if p.tok.kind != tokDot {
			return m, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// flattenMembers extracts single members from a set of singleton tuples
// or bare members (used for perspective point lists).
func flattenMembers(s SetExpr) ([]*MemberExpr, error) {
	switch x := s.(type) {
	case *SetLiteral:
		var out []*MemberExpr
		for _, e := range x.Elems {
			ms, err := flattenMembers(e)
			if err != nil {
				return nil, err
			}
			out = append(out, ms...)
		}
		return out, nil
	case *TupleExpr:
		if len(x.Members) != 1 || x.Members[0].Fn != "" {
			return nil, errNotSingleton
		}
		return []*MemberExpr{x.Members[0]}, nil
	case *MemberExpr:
		if x.Fn != "" {
			return nil, errNotSingleton
		}
		return []*MemberExpr{x}, nil
	}
	return nil, errNotSingleton
}

var errNotSingleton = &notSingletonError{}

type notSingletonError struct{}

func (*notSingletonError) Error() string {
	return "set element is not a single member"
}
