package mdx

import (
	"context"
	"fmt"
	"strings"
	"time"

	"whatifolap/internal/algebra"
	"whatifolap/internal/chunk"
	"whatifolap/internal/core"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/perspective"
	"whatifolap/internal/result"
	"whatifolap/internal/trace"
)

// Coord pins one dimension of a cell to a member.
type Coord struct {
	Dim    int
	Member dimension.MemberID
}

// Tuple is an ordered list of coordinates from distinct dimensions.
type Tuple []Coord

// RunContext carries per-query execution parameters through the
// evaluator into the engine: cancellation (checked at chunk-iteration
// boundaries and between grid rows during projection) and the engine's
// scan parallelism. The zero value runs serially without cancellation.
type RunContext struct {
	// Ctx, when non-nil, bounds the query: it is observed at
	// chunk-iteration boundaries in the engine and between grid rows.
	Ctx context.Context
	// Workers fans the engine's chunk scan out over independent merge
	// groups; <= 1 scans serially.
	Workers int
}

// execContext converts the run context into the engine's form.
func (rc RunContext) execContext() core.ExecContext {
	return core.ExecContext{Ctx: rc.Ctx, Workers: rc.Workers}
}

// err reports the run context's error, if any.
func (rc RunContext) err() error {
	if rc.Ctx == nil {
		return nil
	}
	return rc.Ctx.Err()
}

// context returns the caller's context. The zero RunContext is the
// documented "no cancellation" opt-out, normalized here at the API
// boundary and nowhere deeper.
func (rc RunContext) context() context.Context {
	if rc.Ctx != nil {
		return rc.Ctx
	}
	//lint:ctxok API-boundary shim: a zero RunContext documents the caller's opt-out of cancellation
	return context.Background()
}

// Evaluator runs extended-MDX queries against a cube. Cubes backed by
// chunked storage get the perspective-cube engine for what-if clauses;
// other cubes fall back to the algebra operators.
//
// Concurrency: an evaluator holds no per-query state, so one evaluator
// is safe for concurrent use — per-query parameters travel in a
// RunContext through the *With methods (the deprecated WithContext shim
// returns a copy and stays safe, but cannot carry per-query workers).
type Evaluator struct {
	cube *cube.Cube
	// rc is the default RunContext, set only by the deprecated
	// WithContext shim; the *With methods ignore it.
	rc RunContext
}

// NewEvaluator creates an evaluator bound to a cube.
func NewEvaluator(c *cube.Cube) *Evaluator { return &Evaluator{cube: c} }

// engineStore reports whether the store can back the perspective-cube
// engine: chunked storage, directly or through an engine-capable
// scenario layer chain (a chain carrying wider layers — hypothetical
// new members — evaluates through the algebra path instead).
func engineStore(s cube.Store) bool {
	switch st := s.(type) {
	case *chunk.Store:
		return true
	case *chunk.Chain:
		return st.EngineCapable()
	}
	return false
}

// EvaluateScenario is the scenario-scoped evaluation entry point used
// by the server's /scenarios/{id}/query path: it evaluates a parsed
// query against a scenario's layered view cube (base chunks resolved
// through the scenario's overlay layers). The view cube decides the
// execution path exactly like a base cube — engine when its chain is
// uniform and chunk-backed, algebra otherwise — so scenario queries
// inherit parallel scan, tracing and statistics unchanged.
func EvaluateScenario(rc RunContext, view *cube.Cube, q *Query) (*result.Grid, core.Stats, error) {
	return NewEvaluator(view).RunQueryStatsWith(rc, q)
}

// WithContext returns a copy of the evaluator whose queries observe the
// context.
//
// Deprecated: pass a RunContext to RunWith, RunQueryWith or
// RunQueryStatsWith instead; explicit threading also carries the scan
// worker count.
func (ev *Evaluator) WithContext(ctx context.Context) *Evaluator {
	out := *ev
	out.rc.Ctx = ctx
	return &out
}

// Run parses and evaluates a query in one call.
func (ev *Evaluator) Run(src string) (*result.Grid, error) {
	return ev.RunWith(ev.rc, src)
}

// RunContext is Run under a context: the query is abandoned with the
// context's error at the next cancellation check point.
func (ev *Evaluator) RunContext(ctx context.Context, src string) (*result.Grid, error) {
	return ev.RunWith(RunContext{Ctx: ctx}, src)
}

// RunWith parses and evaluates a query under an explicit RunContext.
// When rc.Ctx carries a trace, parsing is recorded as a "parse" span.
func (ev *Evaluator) RunWith(rc RunContext, src string) (*result.Grid, error) {
	tr := trace.FromContext(rc.Ctx)
	parseStart := tr.Now()
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	tr.Record(trace.SpanFromContext(rc.Ctx), "parse", parseStart, tr.Now())
	return ev.RunQueryWith(rc, q)
}

// RunQuery evaluates a parsed query into a grid.
func (ev *Evaluator) RunQuery(q *Query) (*result.Grid, error) {
	return ev.RunQueryWith(ev.rc, q)
}

// RunQueryWith evaluates a parsed query under an explicit RunContext.
func (ev *Evaluator) RunQueryWith(rc RunContext, q *Query) (*result.Grid, error) {
	g, _, err := ev.RunQueryStatsWith(rc, q)
	return g, err
}

// RunQueryStats evaluates a parsed query and also returns engine
// statistics when the engine path executed (zero otherwise). The
// benchmark harness uses this to report chunk reads and merge work.
func (ev *Evaluator) RunQueryStats(q *Query) (*result.Grid, core.Stats, error) {
	return ev.RunQueryStatsWith(ev.rc, q)
}

// RunQueryStatsWith evaluates a parsed query under an explicit
// RunContext, returning engine statistics including the per-stage wall
// times (the projection stage is timed here).
func (ev *Evaluator) RunQueryStatsWith(rc RunContext, q *Query) (*result.Grid, core.Stats, error) {
	out, mode, stats, err := ev.applyScenarios(rc, q)
	if err != nil {
		return nil, core.Stats{}, err
	}
	tr := trace.FromContext(rc.Ctx)
	projTraceStart := tr.Now()
	projStart := time.Now()
	g, err := ev.project(rc, q, out, mode)
	if err != nil {
		return nil, core.Stats{}, err
	}
	stats.ProjectMs = float64(time.Since(projStart)) / float64(time.Millisecond)
	tr.Record(trace.SpanFromContext(rc.Ctx), "project", projTraceStart, tr.Now())
	return g, stats, nil
}

// ExplainAnalyze executes the query under a fresh span trace and
// renders the recorded span tree followed by per-stage totals, which
// reconcile with the returned core.Stats (the trace and the stats time
// the same stage boundaries, so they agree to clock resolution). The
// grid is returned too so callers can show results alongside the
// analysis. This backs the EXPLAIN ANALYZE query prefix.
func (ev *Evaluator) ExplainAnalyze(rc RunContext, q *Query) (string, *result.Grid, core.Stats, error) {
	tr := trace.New(0)
	root := tr.Start(trace.SpanRef{}, "eval")
	rc.Ctx = trace.WithSpan(trace.NewContext(rc.context(), tr), root)
	g, stats, err := ev.RunQueryStatsWith(rc, q)
	root.End()
	if err != nil {
		return "", nil, stats, err
	}
	var b strings.Builder
	b.WriteString(tr.Render())
	fmt.Fprintf(&b, "totals: plan=%.3fms scan=%.3fms merge=%.3fms project=%.3fms\n",
		tr.StageMs("plan"), tr.StageMs("scan"), tr.StageMs("merge"), tr.StageMs("project"))
	fmt.Fprintf(&b, "stats:  chunks_read=%d cells_relocated=%d merge_groups=%d workers=%d",
		stats.ChunksRead, stats.CellsRelocated, stats.MergeGroups, stats.ScanWorkers)
	if stats.DiskCostMs > 0 {
		fmt.Fprintf(&b, " disk_cost_ms=%.3f", stats.DiskCostMs)
	}
	if stats.SpillFaults > 0 {
		fmt.Fprintf(&b, " spill_faults=%d", stats.SpillFaults)
	}
	b.WriteByte('\n')
	return b.String(), g, stats, nil
}

// Explain describes how the evaluator would execute the query: which
// path (engine or algebra), the lowered operator plan, and the
// rewrites the optimizer applies. For engine paths the physical plan is
// printed under the logical summary — merge groups, the chunk read
// schedule, and the peak resident chunk count. Planning runs (it is
// pure), but no chunks are read and nothing is executed.
func (ev *Evaluator) Explain(q *Query) (string, error) {
	var b strings.Builder
	chunked := engineStore(ev.cube.Store())
	engineChanges := chunked && q.Changes != nil && len(q.Perspectives) == 0 && len(q.Transfers) == 0
	enginePersp := chunked && len(q.Perspectives) == 1 && q.Changes == nil && len(q.Transfers) == 0
	switch {
	case engineChanges:
		fmt.Fprintf(&b, "path: perspective-cube engine (positive scenario, %d change rows)\n", len(q.Changes.Rows))
		changes, varying, err := ev.resolveChanges(q.Changes)
		if err != nil {
			return "", err
		}
		eng, err := core.New(ev.cube, varying)
		if err != nil {
			return "", err
		}
		plan, err := eng.PlanChanges(core.ChangesQuery{Changes: changes, Mode: q.Changes.Mode})
		if err != nil {
			return "", err
		}
		b.WriteString(plan.Describe())
	case enginePersp:
		pc := q.Perspectives[0]
		fmt.Fprintf(&b, "path: perspective-cube engine (%v on %s, %d perspectives, %v)\n",
			pc.Sem, pc.Varying, len(pc.Points), pc.Mode)
		bnd := ev.cube.BindingFor(pc.Varying)
		if bnd == nil {
			return "", fmt.Errorf("mdx: dimension %q has no varying binding", pc.Varying)
		}
		points, err := ev.resolvePerspectivePoints(ev.cube, bnd, pc.Points)
		if err != nil {
			return "", err
		}
		eng, err := core.New(ev.cube, pc.Varying)
		if err != nil {
			return "", err
		}
		members, err := ev.scopeMembers(q, bnd)
		if err != nil {
			return "", err
		}
		plan, err := eng.PlanPerspective(core.PerspectiveQuery{
			Members: members, Perspectives: points, Sem: pc.Sem, Mode: pc.Mode,
		})
		if err != nil {
			return "", err
		}
		b.WriteString(plan.Describe())
	default:
		plan, _, err := ev.lowerToPlan(q)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "path: algebra\nplan:      %s\n", plan)
		opt, rewrites := algebra.Optimize(plan)
		opt, more := algebra.EliminateFullCover(opt, ev.cube)
		rewrites = append(rewrites, more...)
		if len(rewrites) == 0 {
			b.WriteString("optimizer: no rewrites apply\n")
		} else {
			fmt.Fprintf(&b, "optimized: %s\n", opt)
			for _, rw := range rewrites {
				fmt.Fprintf(&b, "  %-24s %s\n", rw.Rule+":", rw.Detail)
			}
		}
	}
	return b.String(), nil
}

// applyScenarios computes the scenario-transformed cube (the
// perspective cube) and the evaluation mode for non-leaf cells. Cubes
// on chunked storage with a single what-if clause run on the
// perspective-cube engine (under rc's context and worker count);
// everything else lowers to an algebra plan, which is optimized (paper
// §8's operator-manipulation direction) before execution.
func (ev *Evaluator) applyScenarios(rc RunContext, q *Query) (*cube.Cube, perspective.Mode, core.Stats, error) {
	mode := perspective.NonVisual
	var stats core.Stats
	chunked := engineStore(ev.cube.Store())

	// Engine fast paths.
	if chunked && q.Changes != nil && len(q.Perspectives) == 0 && len(q.Transfers) == 0 {
		changes, varying, err := ev.resolveChanges(q.Changes)
		if err != nil {
			return nil, mode, stats, err
		}
		eng, err := core.New(ev.cube, varying)
		if err != nil {
			return nil, mode, stats, err
		}
		view, err := eng.ExecChangesWith(rc.execContext(), core.ChangesQuery{Changes: changes, Mode: q.Changes.Mode})
		if err != nil {
			return nil, mode, stats, err
		}
		return view.Result(), q.Changes.Mode, view.Stats, nil
	}
	if chunked && len(q.Perspectives) == 1 && q.Changes == nil && len(q.Transfers) == 0 {
		pc := q.Perspectives[0]
		b := ev.cube.BindingFor(pc.Varying)
		if b == nil {
			return nil, mode, stats, fmt.Errorf("mdx: dimension %q has no varying binding", pc.Varying)
		}
		points, err := ev.resolvePerspectivePoints(ev.cube, b, pc.Points)
		if err != nil {
			return nil, mode, stats, err
		}
		eng, err := core.New(ev.cube, pc.Varying)
		if err != nil {
			return nil, mode, stats, err
		}
		members, err := ev.scopeMembers(q, b)
		if err != nil {
			return nil, mode, stats, err
		}
		view, err := eng.ExecPerspectiveWith(rc.execContext(), core.PerspectiveQuery{
			Members:      members,
			Perspectives: points,
			Sem:          pc.Sem,
			Mode:         pc.Mode,
		})
		if err != nil {
			return nil, mode, stats, err
		}
		return view.Result(), pc.Mode, view.Stats, nil
	}

	// Algebra path: lower to a plan, optimize, execute.
	if err := rc.err(); err != nil {
		return nil, mode, stats, err
	}
	plan, mode, err := ev.lowerToPlan(q)
	if err != nil {
		return nil, mode, stats, err
	}
	plan, _ = algebra.Optimize(plan)
	plan, _ = algebra.EliminateFullCover(plan, ev.cube)
	outCube, err := algebra.Execute(plan, ev.cube)
	if err != nil {
		return nil, mode, stats, err
	}
	return outCube, mode, stats, nil
}

// lowerToPlan translates the query's what-if clauses into an algebra
// plan (changes innermost, then perspectives — the structure must exist
// before perspectives are taken over it), returning the evaluation mode
// of the outermost clause.
func (ev *Evaluator) lowerToPlan(q *Query) (algebra.Plan, perspective.Mode, error) {
	var plan algebra.Plan = algebra.PlanInput{}
	mode := perspective.NonVisual
	for _, tc := range q.Transfers {
		tr, err := ev.resolveTransfer(tc)
		if err != nil {
			return nil, mode, err
		}
		plan = &algebra.PlanTransfer{Transfer: tr, Child: plan}
	}
	if q.Changes != nil {
		changes, varying, err := ev.resolveChanges(q.Changes)
		if err != nil {
			return nil, mode, err
		}
		plan = &algebra.PlanChanges{Varying: varying, Changes: changes, Child: plan}
		mode = q.Changes.Mode
	}
	for _, pc := range q.Perspectives {
		b := ev.cube.BindingFor(pc.Varying)
		if b == nil {
			return nil, mode, fmt.Errorf("mdx: dimension %q has no varying binding", pc.Varying)
		}
		points, err := ev.resolvePerspectivePoints(ev.cube, b, pc.Points)
		if err != nil {
			return nil, mode, err
		}
		plan = &algebra.PlanPerspective{Varying: pc.Varying, Sem: pc.Sem, Points: points, Child: plan}
		mode = pc.Mode
	}
	return plan, mode, nil
}

// resolvePerspectivePoints maps perspective member references to leaf
// ordinals of the binding's parameter dimension.
func (ev *Evaluator) resolvePerspectivePoints(c *cube.Cube, b *dimension.Binding, points []*MemberExpr) ([]int, error) {
	out := make([]int, 0, len(points))
	for _, pt := range points {
		ref := pt.Parts[len(pt.Parts)-1]
		id, err := b.Param.Lookup(ref)
		if err != nil {
			return nil, fmt.Errorf("mdx: perspective point: %w", err)
		}
		m := b.Param.Member(id)
		if m.LeafOrdinal < 0 {
			return nil, fmt.Errorf("mdx: perspective point %q is not a leaf of %s", ref, b.Param.Name())
		}
		out = append(out, m.LeafOrdinal)
	}
	return out, nil
}

// scopeMembers extracts the varying-dimension base members referenced by
// the query's axes, to bound the engine's work (paper §6.3). An empty
// result defers to the engine's default scope.
func (ev *Evaluator) scopeMembers(q *Query, b *dimension.Binding) ([]string, error) {
	vi := ev.cube.DimIndex(b.Varying.Name())
	seen := map[string]bool{}
	var names []string
	for _, ax := range q.Axes {
		tuples, err := ev.evalSet(ev.cube, ax.Set)
		if err != nil {
			return nil, err
		}
		for _, tp := range tuples {
			for _, co := range tp {
				if co.Dim != vi {
					continue
				}
				m := b.Varying.Member(co.Member)
				if m.LeafOrdinal < 0 {
					// A non-leaf scope member covers all varying
					// members below it.
					for _, o := range b.Varying.LeafDescendants(co.Member) {
						name := b.Varying.Leaf(o).Name
						if !seen[name] {
							seen[name] = true
							names = append(names, name)
						}
					}
					continue
				}
				if !seen[m.Name] {
					seen[m.Name] = true
					names = append(names, m.Name)
				}
			}
		}
	}
	for _, w := range q.Where {
		dim, id, err := ev.resolveMember(ev.cube, w)
		if err != nil {
			return nil, err
		}
		if dim == vi {
			name := b.Varying.Member(id).Name
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	return names, nil
}

// resolveTransfer maps a TRANSFER clause onto the algebra operator:
// the dimension is inferred from the FROM member, and each scope member
// contributes a descendant condition on its own dimension.
func (ev *Evaluator) resolveTransfer(tc *TransferClause) (algebra.Transfer, error) {
	fromDim, fromID, err := ev.resolveMember(ev.cube, tc.From)
	if err != nil {
		return algebra.Transfer{}, fmt.Errorf("mdx: transfer from: %w", err)
	}
	toDim, toID, err := ev.resolveMember(ev.cube, tc.To)
	if err != nil {
		return algebra.Transfer{}, fmt.Errorf("mdx: transfer to: %w", err)
	}
	if fromDim != toDim {
		return algebra.Transfer{}, fmt.Errorf("mdx: transfer endpoints span dimensions %s and %s",
			ev.cube.Dim(fromDim).Name(), ev.cube.Dim(toDim).Name())
	}
	d := ev.cube.Dim(fromDim)
	tr := algebra.Transfer{
		Dim:      d.Name(),
		From:     d.Path(fromID),
		To:       d.Path(toID),
		Fraction: tc.Fraction,
	}
	for _, sm := range tc.Scope {
		sd, sid, err := ev.resolveMember(ev.cube, sm)
		if err != nil {
			return algebra.Transfer{}, fmt.Errorf("mdx: transfer scope: %w", err)
		}
		ref := ev.cube.Dim(sd).Path(sid)
		if ref == "" {
			ref = ev.cube.Dim(sd).Name()
		}
		tr.Scope = append(tr.Scope, cube.ScopeCond{Dim: ev.cube.Dim(sd).Name(), Member: ref})
	}
	return tr, nil
}

// resolveChanges maps a CHANGES clause onto algebra changes and
// identifies the varying dimension (from the old parents).
func (ev *Evaluator) resolveChanges(cc *ChangesClause) ([]algebra.Change, string, error) {
	var out []algebra.Change
	varying := ""
	for _, row := range cc.Rows {
		oldDim, oldID, err := ev.resolveMember(ev.cube, row.Old)
		if err != nil {
			return nil, "", fmt.Errorf("mdx: change old parent: %w", err)
		}
		dimName := ev.cube.Dim(oldDim).Name()
		if varying == "" {
			varying = dimName
		} else if varying != dimName {
			return nil, "", fmt.Errorf("mdx: changes span dimensions %s and %s", varying, dimName)
		}
		d := ev.cube.Dim(oldDim)
		newDim, newID, err := ev.resolveMember(ev.cube, row.New)
		if err != nil {
			return nil, "", fmt.Errorf("mdx: change new parent: %w", err)
		}
		if newDim != oldDim {
			return nil, "", fmt.Errorf("mdx: change parents in different dimensions")
		}
		b := ev.cube.BindingFor(dimName)
		if b == nil {
			return nil, "", fmt.Errorf("mdx: dimension %q has no varying binding", dimName)
		}
		atID, err := b.Param.Lookup(row.At.Parts[len(row.At.Parts)-1])
		if err != nil {
			return nil, "", fmt.Errorf("mdx: change moment: %w", err)
		}
		at := b.Param.Member(atID)
		if at.LeafOrdinal < 0 {
			return nil, "", fmt.Errorf("mdx: change moment %q is not a leaf of %s", row.At, b.Param.Name())
		}
		// The member field may be a set ([FTE].Children applies the
		// change to every child). Chained changes may reference
		// instances that only exist after earlier rows apply
		// (e.g. [Contractor].[Tom] after Tom moved to Contractor), so a
		// failed resolution of a plain reference falls back to the base
		// name; PlanSplit validates the instance when the row applies.
		memberTuples, err := ev.evalSet(ev.cube, row.Member)
		if err != nil {
			if me, ok := row.Member.(*MemberExpr); ok && me.Fn == "" {
				base := me.Parts[len(me.Parts)-1]
				if len(d.Instances(base)) > 0 {
					out = append(out, algebra.Change{
						Member:    base,
						OldParent: d.Path(oldID),
						NewParent: d.Path(newID),
						T:         at.LeafOrdinal,
					})
					continue
				}
			}
			return nil, "", fmt.Errorf("mdx: change member: %w", err)
		}
		for _, tp := range memberTuples {
			if len(tp) != 1 {
				return nil, "", fmt.Errorf("mdx: change member must be a single-dimension set")
			}
			co := tp[0]
			if co.Dim != oldDim {
				return nil, "", fmt.Errorf("mdx: change member not in dimension %s", dimName)
			}
			m := d.Member(co.Member)
			if m.LeafOrdinal < 0 {
				return nil, "", fmt.Errorf("mdx: change member %q is not a leaf", d.Path(co.Member))
			}
			// The member must currently sit under the old parent.
			if m.Parent != oldID {
				// Tolerate path-specified members whose ref already
				// includes the old parent.
				if !d.IsDescendant(co.Member, oldID) {
					return nil, "", fmt.Errorf("mdx: member %q is not under %q", d.Path(co.Member), d.Path(oldID))
				}
			}
			out = append(out, algebra.Change{
				Member:    m.Name,
				OldParent: d.Path(oldID),
				NewParent: d.Path(newID),
				T:         at.LeafOrdinal,
			})
		}
	}
	return out, varying, nil
}

// project evaluates the axes and builds the output grid.
func (ev *Evaluator) project(rc RunContext, q *Query, out *cube.Cube, mode perspective.Mode) (*result.Grid, error) {
	var cols, rows []Tuple
	var hasCols, hasRows, rowsNonEmpty, colsNonEmpty bool
	for _, ax := range q.Axes {
		tuples, err := ev.evalSet(out, ax.Set)
		if err != nil {
			return nil, err
		}
		switch ax.Name {
		case "COLUMNS":
			cols, hasCols = tuples, true
			colsNonEmpty = ax.NonEmpty
		case "ROWS":
			rows, hasRows = tuples, true
			rowsNonEmpty = ax.NonEmpty
		}
	}
	// An absent axis contributes a single all-default tuple; a present
	// axis whose set evaluated empty stays empty.
	if !hasCols {
		cols = []Tuple{{}}
	}
	if !hasRows {
		rows = []Tuple{{}}
	}

	// Slicer.
	var slicer Tuple
	onAxis := map[int]bool{}
	for _, tuples := range [][]Tuple{cols, rows} {
		for _, tp := range tuples {
			for _, co := range tp {
				onAxis[co.Dim] = true
			}
		}
	}
	for _, w := range q.Where {
		dim, id, err := ev.resolveMember(out, w)
		if err != nil {
			return nil, fmt.Errorf("mdx: slicer: %w", err)
		}
		if onAxis[dim] {
			return nil, fmt.Errorf("mdx: dimension %s appears both on an axis and in the slicer", out.Dim(dim).Name())
		}
		slicer = append(slicer, Coord{Dim: dim, Member: id})
	}

	g := result.New(len(rows), len(cols))
	for j, tp := range cols {
		g.ColLabels[j] = ev.tupleLabel(out, tp)
	}
	props := q.DimProperties
	g.PropNames = append(g.PropNames, props...)

	base := make([]dimension.MemberID, out.NumDims())
	for i := 0; i < out.NumDims(); i++ {
		base[i] = out.Dim(i).Root()
	}
	ids := make([]dimension.MemberID, out.NumDims())
	for i, rt := range rows {
		if err := rc.err(); err != nil {
			return nil, err
		}
		g.RowLabels[i] = ev.tupleLabel(out, rt)
		if len(props) > 0 {
			g.RowProps = append(g.RowProps, ev.rowProps(out, rt, props))
		}
		for j, ct := range cols {
			copy(ids, base)
			for _, co := range slicer {
				ids[co.Dim] = co.Member
			}
			for _, co := range ct {
				ids[co.Dim] = co.Member
			}
			for _, co := range rt {
				ids[co.Dim] = co.Member
			}
			v, err := algebra.CellValue(ev.cube, out, ids, mode)
			if err != nil {
				return nil, err
			}
			g.Values[i][j] = v
		}
	}
	if rowsNonEmpty {
		g.DropEmptyRows()
	}
	if colsNonEmpty {
		g.DropEmptyCols()
	}
	return g, nil
}

// rowProps computes DIMENSION PROPERTIES values for one row: for a
// property naming a dimension present in the row tuple, the member's
// parent path (e.g. the department an employee instance reports to).
func (ev *Evaluator) rowProps(c *cube.Cube, row Tuple, props []string) []string {
	out := make([]string, len(props))
	for k, p := range props {
		di := c.DimIndex(p)
		if di < 0 {
			out[k] = ""
			continue
		}
		for _, co := range row {
			if co.Dim != di {
				continue
			}
			m := c.Dim(di).Member(co.Member)
			if m.Parent != dimension.None {
				parent := c.Dim(di).Path(m.Parent)
				if parent == "" {
					parent = c.Dim(di).Name()
				}
				out[k] = parent
			}
		}
	}
	return out
}

func (ev *Evaluator) tupleLabel(c *cube.Cube, tp Tuple) string {
	if len(tp) == 0 {
		return "(all)"
	}
	parts := make([]string, len(tp))
	for i, co := range tp {
		p := c.Dim(co.Dim).Path(co.Member)
		if p == "" {
			p = c.Dim(co.Dim).Name()
		}
		parts[i] = p
	}
	return strings.Join(parts, " / ")
}

// evalSet evaluates a set expression into tuples against the cube's
// dimensions.
func (ev *Evaluator) evalSet(c *cube.Cube, s SetExpr) ([]Tuple, error) {
	switch x := s.(type) {
	case *SetLiteral:
		var out []Tuple
		for _, e := range x.Elems {
			ts, err := ev.evalSet(c, e)
			if err != nil {
				return nil, err
			}
			out = append(out, ts...)
		}
		return out, nil

	case *TupleExpr:
		tp := make(Tuple, 0, len(x.Members))
		for _, m := range x.Members {
			if m.Fn != "" {
				return nil, fmt.Errorf("mdx: member function %s not allowed inside a tuple", m.Fn)
			}
			dim, id, err := ev.resolveMember(c, m)
			if err != nil {
				return nil, err
			}
			tp = append(tp, Coord{Dim: dim, Member: id})
		}
		return []Tuple{tp}, nil

	case *CrossJoin:
		l, err := ev.evalSet(c, x.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.evalSet(c, x.R)
		if err != nil {
			return nil, err
		}
		out := make([]Tuple, 0, len(l)*len(r))
		for _, lt := range l {
			for _, rt := range r {
				tp := make(Tuple, 0, len(lt)+len(rt))
				tp = append(tp, lt...)
				tp = append(tp, rt...)
				out = append(out, tp)
			}
		}
		return out, nil

	case *Union:
		l, err := ev.evalSet(c, x.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.evalSet(c, x.R)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out []Tuple
		for _, tp := range append(l, r...) {
			k := tupleKey(tp)
			if !seen[k] {
				seen[k] = true
				out = append(out, tp)
			}
		}
		return out, nil

	case *Head:
		ts, err := ev.evalSet(c, x.Set)
		if err != nil {
			return nil, err
		}
		if x.N < 0 {
			return nil, fmt.Errorf("mdx: Head count %d is negative", x.N)
		}
		if x.N < len(ts) {
			ts = ts[:x.N]
		}
		return ts, nil

	case *Descendants:
		dim, id, err := ev.resolveMember(c, x.Of)
		if err != nil {
			return nil, err
		}
		d := c.Dim(dim)
		var out []Tuple
		var walk func(m dimension.MemberID)
		walk = func(m dimension.MemberID) {
			mm := d.Member(m)
			include := false
			if mm.Parent != dimension.None || m != id {
				switch {
				case x.Layer < 0:
					include = m != id // all strict descendants
				case x.Flag == DescSelf:
					include = mm.Depth == x.Layer
				case x.Flag == DescSelfAndAfter:
					include = mm.Depth >= x.Layer
				case x.Flag == DescAfter:
					include = mm.Depth > x.Layer
				}
			}
			if include {
				out = append(out, Tuple{{Dim: dim, Member: m}})
			}
			for _, ch := range mm.Children {
				walk(ch)
			}
		}
		walk(id)
		return out, nil

	case *MemberExpr:
		return ev.evalMemberSet(c, x)
	}
	return nil, fmt.Errorf("mdx: unknown set expression %T", s)
}

// evalMemberSet expands a member expression (with optional trailing
// function) into tuples.
func (ev *Evaluator) evalMemberSet(c *cube.Cube, m *MemberExpr) ([]Tuple, error) {
	dim, id, err := ev.resolveMember(c, m)
	if err != nil {
		return nil, err
	}
	d := c.Dim(dim)
	switch m.Fn {
	case "":
		return []Tuple{{{Dim: dim, Member: id}}}, nil
	case "Children":
		var out []Tuple
		for _, ch := range d.Member(id).Children {
			out = append(out, Tuple{{Dim: dim, Member: ch}})
		}
		return out, nil
	case "Members":
		if id != d.Root() {
			return nil, fmt.Errorf("mdx: .Members applies to a dimension, not member %q", d.Path(id))
		}
		var out []Tuple
		for i := dimension.MemberID(1); int(i) < d.NumMembers(); i++ {
			out = append(out, Tuple{{Dim: dim, Member: i}})
		}
		return out, nil
	case "Levels":
		if id != d.Root() {
			return nil, fmt.Errorf("mdx: .Levels applies to a dimension, not member %q", d.Path(id))
		}
		var out []Tuple
		for _, lm := range d.LevelMembers(m.Level) {
			out = append(out, Tuple{{Dim: dim, Member: lm}})
		}
		return out, nil
	}
	return nil, fmt.Errorf("mdx: unknown member function %q", m.Fn)
}

// resolveMember resolves a member path to (dimension index, member ID).
// The first path part may name the dimension; otherwise all dimensions
// are searched and the reference must be unambiguous.
func (ev *Evaluator) resolveMember(c *cube.Cube, m *MemberExpr) (int, dimension.MemberID, error) {
	if len(m.Parts) == 0 {
		return 0, 0, fmt.Errorf("mdx: empty member reference")
	}
	// Dimension-qualified.
	if di := c.DimIndex(m.Parts[0]); di >= 0 {
		rest := m.Parts[1:]
		if len(rest) == 0 {
			return di, c.Dim(di).Root(), nil
		}
		id, err := lookupParts(c.Dim(di), rest)
		if err != nil {
			return 0, 0, err
		}
		return di, id, nil
	}
	// Unqualified: search all dimensions.
	foundDim, foundID := -1, dimension.None
	for di := 0; di < c.NumDims(); di++ {
		id, err := lookupParts(c.Dim(di), m.Parts)
		if err != nil {
			continue
		}
		if foundDim >= 0 {
			return 0, 0, fmt.Errorf("mdx: member %s is ambiguous between dimensions %s and %s",
				m, c.Dim(foundDim).Name(), c.Dim(di).Name())
		}
		foundDim, foundID = di, id
	}
	if foundDim < 0 {
		return 0, 0, fmt.Errorf("mdx: no dimension has member %s", m)
	}
	return foundDim, foundID, nil
}

// lookupParts resolves path parts within one dimension: a full path
// first, then progressively shorter suffix interpretations (the leading
// parts may repeat hierarchy context, e.g. [FTE].[Joe] vs [Joe]).
func lookupParts(d *dimension.Dimension, parts []string) (dimension.MemberID, error) {
	if id, err := d.Lookup(strings.Join(parts, "/")); err == nil {
		return id, nil
	}
	if len(parts) == 1 {
		return d.Lookup(parts[0])
	}
	// Resolve head, then walk down by child names — tolerates paths that
	// skip intermediate levels only when unambiguous.
	id, err := d.Lookup(parts[0])
	if err != nil {
		return dimension.None, err
	}
	for _, p := range parts[1:] {
		next := dimension.None
		for _, ch := range d.Member(id).Children {
			if d.Member(ch).Name == p {
				next = ch
				break
			}
		}
		if next == dimension.None {
			return dimension.None, fmt.Errorf("dimension %s: %q has no child %q", d.Name(), d.Path(id), p)
		}
		id = next
	}
	return id, nil
}

func tupleKey(tp Tuple) string {
	var b strings.Builder
	for _, co := range tp {
		fmt.Fprintf(&b, "%d:%d;", co.Dim, co.Member)
	}
	return b.String()
}
