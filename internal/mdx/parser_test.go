package mdx

import (
	"strings"
	"testing"

	"whatifolap/internal/perspective"
)

// TestParseFig10a parses the paper's Fig. 10(a) experiment query
// verbatim (modulo the app-specific member names it references).
func TestParseFig10a(t *testing.T) {
	src := `
WITH perspective {(Jan), (Jul)} for Department STATIC
select {CrossJoin(
    {[Account].Levels(0).Members},
    {([Current], [Local], [BU Version_1], [HSP_InputValue])}
)} on columns,
{CrossJoin(
    { Union(
        {Union(
            {[EmployeesWithAtleastOneMove-Set1].Children},
            {[EmployeesWithAtleastOneMove-Set2].Children}
        )},
        {[EmployeesWithAtleastOneMove-Set3].Children})},
    {Descendants([Period],1,self_and_after)}
)} DIMENSION PROPERTIES [Department] on rows
from [App].[Db]`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Perspectives) != 1 {
		t.Fatal("missing perspective clause")
	}
	if q.Perspectives[0].Sem != perspective.Static {
		t.Fatalf("Sem = %v, want Static", q.Perspectives[0].Sem)
	}
	if q.Perspectives[0].Mode != perspective.NonVisual {
		t.Fatal("default mode should be non-visual (paper §6.1)")
	}
	if q.Perspectives[0].Varying != "Department" {
		t.Fatalf("Varying = %q", q.Perspectives[0].Varying)
	}
	if len(q.Perspectives[0].Points) != 2 || q.Perspectives[0].Points[0].Parts[0] != "Jan" {
		t.Fatalf("Points = %v", q.Perspectives[0].Points)
	}
	if len(q.Axes) != 2 || q.Axes[0].Name != "COLUMNS" || q.Axes[1].Name != "ROWS" {
		t.Fatalf("Axes = %v", q.Axes)
	}
	if len(q.DimProperties) != 1 || q.DimProperties[0] != "Department" {
		t.Fatalf("DimProperties = %v", q.DimProperties)
	}
	if len(q.From) != 2 || q.From[0] != "App" || q.From[1] != "Db" {
		t.Fatalf("From = %v", q.From)
	}
}

// TestParseFig10b covers the dynamic-forward form of Fig. 10(b).
func TestParseFig10b(t *testing.T) {
	src := `
WITH perspective {(Jan), (Apr), (Jul), (Oct)} for Department DYNAMIC FORWARD
select {CrossJoin(
    {[Account].Levels(0).Members},
    {([Current], [Local], [BU Version_1], [HSP_InputValue])}
)} on columns,
{CrossJoin(
    {EmployeeS3},
    {Descendants([Period],1,self_and_after)}
)} DIMENSION PROPERTIES [Department] on rows
from [App].[Db]`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.Perspectives[0].Sem != perspective.Forward {
		t.Fatalf("Sem = %v, want Forward", q.Perspectives[0].Sem)
	}
	if len(q.Perspectives[0].Points) != 4 {
		t.Fatalf("Points = %d, want 4", len(q.Perspectives[0].Points))
	}
}

// TestParseFig10c covers the Head() form of Fig. 10(c).
func TestParseFig10c(t *testing.T) {
	src := `
WITH perspective {(Jan), (Apr), (Jul), (Oct)} for Department DYNAMIC FORWARD
select {[Account].Levels(0).Members} on columns,
{CrossJoin(
    {Head({[EmployeesWithAtleastOneMove-Set1].Children}, 50)},
    {Descendants([Period],1,self_and_after)}
)} on rows
from [App].[Db]`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rows := q.Axes[1].Set.(*SetLiteral).Elems[0].(*CrossJoin)
	head := rows.L.(*SetLiteral).Elems[0].(*Head)
	if head.N != 50 {
		t.Fatalf("Head N = %d, want 50", head.N)
	}
}

func TestParseSemanticsVariants(t *testing.T) {
	for src, want := range map[string]perspective.Semantics{
		"WITH perspective {(Jan)} for D STATIC select {x} on columns from [A]":                    perspective.Static,
		"WITH perspective {(Jan)} for D FORWARD select {x} on columns from [A]":                   perspective.Forward,
		"WITH perspective {(Jan)} for D DYNAMIC FORWARD select {x} on columns from [A]":           perspective.Forward,
		"WITH perspective {(Jan)} for D EXTENDED FORWARD select {x} on columns from [A]":          perspective.ExtendedForward,
		"WITH perspective {(Jan)} for D EXTENDED DYNAMIC FORWARD select {x} on columns from [A]":  perspective.ExtendedForward,
		"WITH perspective {(Jan)} for D DYNAMIC BACKWARD select {x} on columns from [A]":          perspective.Backward,
		"WITH perspective {(Jan)} for D EXTENDED DYNAMIC BACKWARD select {x} on columns from [A]": perspective.ExtendedBackward,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if q.Perspectives[0].Sem != want {
			t.Errorf("%s: Sem = %v, want %v", src, q.Perspectives[0].Sem, want)
		}
	}
}

func TestParseModes(t *testing.T) {
	q := MustParse("WITH perspective {(Jan)} for D STATIC VISUAL select {x} on columns from [A]")
	if q.Perspectives[0].Mode != perspective.Visual {
		t.Fatal("VISUAL not parsed")
	}
	q = MustParse("WITH perspective {(Jan)} for D STATIC NONVISUAL select {x} on columns from [A]")
	if q.Perspectives[0].Mode != perspective.NonVisual {
		t.Fatal("NONVISUAL not parsed")
	}
	// '-' is an identifier character, so NON-VISUAL lexes as one token.
	q = MustParse("WITH perspective {(Jan)} for D STATIC NON-VISUAL select {x} on columns from [A]")
	if q.Perspectives[0].Mode != perspective.NonVisual {
		t.Fatal("NON-VISUAL not parsed")
	}
}

func TestParseChangesClause(t *testing.T) {
	src := `
WITH CHANGES {([FTE].[Lisa], [FTE], [PTE], [Apr]), ([FTE].Children, [FTE], [Contractor], [Jun])} VISUAL
select {[Measures].[Salary]} on columns, {[Organization].Members} on rows
from [Warehouse]
where ([Location].[NY])`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.Changes == nil || len(q.Changes.Rows) != 2 {
		t.Fatalf("Changes = %+v", q.Changes)
	}
	if q.Changes.Mode != perspective.Visual {
		t.Fatal("changes mode should be VISUAL")
	}
	r0 := q.Changes.Rows[0]
	if r0.Old.Parts[0] != "FTE" || r0.New.Parts[0] != "PTE" || r0.At.Parts[0] != "Apr" {
		t.Fatalf("row 0 = %+v", r0)
	}
	if m, ok := q.Changes.Rows[1].Member.(*MemberExpr); !ok || m.Fn != "Children" {
		t.Fatalf("row 1 member should be [FTE].Children, got %v", q.Changes.Rows[1].Member)
	}
	if len(q.Where) != 1 {
		t.Fatalf("Where = %v", q.Where)
	}
}

func TestParseBothClauses(t *testing.T) {
	src := `
WITH CHANGES {([FTE].[Lisa], [FTE], [PTE], [Apr])}
WITH PERSPECTIVE {(Jan)} FOR Organization STATIC VISUAL
select {[Measures].[Salary]} on columns from [W]`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.Changes == nil || len(q.Perspectives) != 1 {
		t.Fatal("both clauses should parse")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"select",
		"select {x} on diagonal from [A]",
		"select {x} from [A]",
		"select {x on columns from [A]",
		"WITH perspective {(Jan)} STATIC select {x} on columns from [A]", // missing FOR
		"WITH perspective {(Jan)} for D SIDEWAYS select {x} on columns from [A]",
		"WITH bogus select {x} on columns from [A]",
		"WITH perspective {(Jan)} for D STATIC select {x} on columns from [A] where (",
		"select {Head({x}, y)} on columns from [A]",   // non-numeric head
		"select {Members} on columns from [A]",        // Members without path
		"select {[A].Levels(0)} on columns from [A]",  // Levels without .Members
		"select {CrossJoin({x})} on columns from [A]", // missing arg
		"select {x} on columns from [A] extra",        // trailing garbage
		"select {[unterminated} on columns from [A]",  // bad bracket
		"select {Descendants([P],1,NOWHERE)} on columns from [A]",
		"WITH perspective {([A].Children)} for D STATIC select {x} on columns from [A]", // non-singleton point
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDuplicateClauses(t *testing.T) {
	src := `WITH perspective {(Jan)} for D STATIC WITH perspective {(Feb)} for D STATIC select {x} on columns from [A]`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate perspective should fail, got %v", err)
	}
}

func TestParseComments(t *testing.T) {
	src := `
-- a leading comment
select {[X]} on columns -- trailing comment
from [A]`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestSetExprStrings(t *testing.T) {
	q := MustParse(`select {CrossJoin({[A].[B]}, Union({(x, y)}, Head(Descendants([P],2,AFTER), 3)))} on columns from [W]`)
	got := q.Axes[0].Set.String()
	want := "{CrossJoin({[A].[B]}, Union({([x], [y])}, Head(Descendants([P], 2, AFTER), 3)))}"
	if got != want {
		t.Fatalf("String = %s, want %s", got, want)
	}
	q2 := MustParse(`select {[A].Levels(0).Members, [B].Children, [C].Members, Descendants([D])} on columns from [W]`)
	got2 := q2.Axes[0].Set.String()
	want2 := "{[A].Levels(0).Members, [B].Children, [C].Members, Descendants([D])}"
	if got2 != want2 {
		t.Fatalf("String = %s, want %s", got2, want2)
	}
}

func TestLexerPositions(t *testing.T) {
	_, err := Parse("select {x}\n on columns from [A] @")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error should carry line info, got %v", err)
	}
}

func BenchmarkParseFig10a(b *testing.B) {
	src := `
WITH perspective {(Jan), (Jul)} for Department STATIC
select {CrossJoin({[Account].Levels(0).Members},
    {([Current], [Local], [BU Version_1], [HSP_InputValue])})} on columns,
{CrossJoin({Union({[S1].Children}, {[S2].Children})},
    {Descendants([Period],1,self_and_after)})} DIMENSION PROPERTIES [Department] on rows
from [App].[Db]`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
