package mdx

import "strings"

// keywords are the identifiers the parser matches case-insensitively.
// Normalize folds these (and only these) to upper case: folding an
// arbitrary identifier could merge two queries that resolve to
// different members, but keyword spelling never changes meaning.
var keywords = map[string]bool{}

func init() {
	for _, kw := range []string{
		"WITH", "PERSPECTIVE", "FOR", "STATIC", "DYNAMIC", "EXTENDED",
		"FORWARD", "BACKWARD", "VISUAL", "NONVISUAL", "NON-VISUAL",
		"CHANGES", "TRANSFER", "TO", "SELECT", "ON", "COLUMNS", "ROWS",
		"FROM", "WHERE", "NON", "EMPTY", "DIMENSION", "PROPERTIES",
		"CROSSJOIN", "UNION", "HEAD", "DESCENDANTS", "SELF", "AFTER",
		"SELF_AND_AFTER", "MEMBERS", "CHILDREN", "LEVELS",
		"EXPLAIN", "ANALYZE",
	} {
		keywords[kw] = true
	}
}

// Normalize canonicalizes a query's surface form without parsing it:
// comments are stripped, whitespace runs collapse, keywords fold to
// upper case, and bracketed names are re-quoted verbatim. Two sources
// that tokenize identically normalize identically, so the result is a
// sound cache key for query results (used by the serving layer's
// result cache). Member names keep their case — only spelling the
// parser itself treats as case-insensitive is folded.
func Normalize(src string) (string, error) {
	l := newLexer(src)
	var b strings.Builder
	for {
		t, err := l.next()
		if err != nil {
			return "", err
		}
		if t.kind == tokEOF {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tokBracketed:
			b.WriteByte('[')
			b.WriteString(t.text)
			b.WriteByte(']')
		case tokIdent:
			if up := strings.ToUpper(t.text); keywords[up] {
				b.WriteString(up)
			} else {
				b.WriteString(t.text)
			}
		default:
			b.WriteString(t.text)
		}
	}
	return b.String(), nil
}
