package mdx

import (
	"strings"

	"whatifolap/internal/perspective"
)

// Query is a parsed extended-MDX query.
type Query struct {
	// Explain marks an EXPLAIN-prefixed query: describe the execution
	// path and physical plan instead of returning a grid. With Analyze
	// also set (EXPLAIN ANALYZE), the query actually executes under a
	// span trace and the output includes the recorded span tree and
	// per-stage timings.
	Explain bool
	Analyze bool
	// Perspectives are the negative-scenario prefixes, at most one per
	// varying dimension (the paper's §2: "a cube may have several
	// varying dimensions, each depending on one or more parameters").
	// Clauses apply left to right.
	Perspectives []*PerspectiveClause
	// Changes is the positive-scenario prefix, or nil. A query may carry
	// both (the paper: "a query can have both positive and negative
	// scenarios"); changes are applied first, then perspectives.
	Changes *ChangesClause
	// Transfers are data-driven scenario prefixes (the paper's §1
	// salary-reallocation example), applied before everything else.
	Transfers []*TransferClause
	// Axes in declaration order; axis 0 is COLUMNS, axis 1 is ROWS.
	Axes []Axis
	// From is the [App].[Db] cube reference (informational; the
	// evaluator is bound to a cube).
	From []string
	// Where is the slicer tuple, possibly empty.
	Where []*MemberExpr
	// DimProperties lists DIMENSION PROPERTIES names requested on rows.
	DimProperties []string
}

// PerspectiveClause is "WITH PERSPECTIVE {(p1), …} FOR <dim> <semantics>
// [<mode>]".
type PerspectiveClause struct {
	// Points are the perspective members (parameter-dimension leaves).
	Points []*MemberExpr
	// Varying names the varying dimension whose changes the
	// perspectives negate.
	Varying string
	Sem     perspective.Semantics
	Mode    perspective.Mode
}

// TransferClause is this implementation's extended-MDX surface for the
// paper's data-driven scenarios:
//
//	WITH TRANSFER 0.10 FROM [NY] TO [MA] FOR ([PTE], [Qtr1], [Salary])
//
// reads: reallocate 10% of every cell under the FOR scope from NY to
// MA. The FOR tuple is optional (no scope = all cells of the source).
type TransferClause struct {
	Fraction float64
	From, To *MemberExpr
	Scope    []*MemberExpr
}

// ChangesClause is "WITH CHANGES {(m, o, n, t), …} [<mode>]".
type ChangesClause struct {
	Rows []*ChangeRow
	Mode perspective.Mode
}

// ChangeRow is one tuple of the change relation R(m, o, n, t). Member
// may be a set expression ("[FTE].Children applies the change to all
// children of FTE").
type ChangeRow struct {
	Member SetExpr
	Old    *MemberExpr
	New    *MemberExpr
	At     *MemberExpr
}

// Axis is one projection axis of the result grid.
type Axis struct {
	Set  SetExpr
	Name string // COLUMNS or ROWS
	// NonEmpty drops tuples whose entire row/column is ⊥ (the MDX
	// "NON EMPTY" axis prefix).
	NonEmpty bool
}

// SetExpr is a set-valued expression: it evaluates to an ordered list of
// member tuples.
type SetExpr interface {
	setNode()
	String() string
}

// SetLiteral is "{e1, e2, …}": the concatenation of its elements.
type SetLiteral struct{ Elems []SetExpr }

// TupleExpr is "(m1, m2, …)": a single tuple combining members from
// distinct dimensions.
type TupleExpr struct{ Members []*MemberExpr }

// CrossJoin is "CrossJoin(s1, s2)".
type CrossJoin struct{ L, R SetExpr }

// Union is "Union(s1, s2)" with MDX's default duplicate removal.
type Union struct{ L, R SetExpr }

// Head is "Head(s, n)".
type Head struct {
	Set SetExpr
	N   int
}

// Descendants is "Descendants(m, layer, flag)"; Layer < 0 means "all
// strict descendants" (two-argument form omitted).
type Descendants struct {
	Of    *MemberExpr
	Layer int
	Flag  DescFlag
}

// DescFlag selects which layers Descendants returns.
type DescFlag int

// Descendants flags (Essbase spellings).
const (
	DescSelf         DescFlag = iota // the layer only
	DescSelfAndAfter                 // the layer and everything below
	DescAfter                        // strictly below the layer
)

// MemberExpr references one member, or a member-set via a trailing
// function: [A].[B], [A].Children, [A].Members, [A].Levels(0).Members.
type MemberExpr struct {
	// Parts are the bracketed/ident path segments, e.g.
	// ["Organization", "FTE", "Joe"].
	Parts []string
	// Fn is an optional trailing function: "", "Members", "Children",
	// or "Levels" (with Level set).
	Fn    string
	Level int
}

func (*SetLiteral) setNode()  {}
func (*TupleExpr) setNode()   {}
func (*CrossJoin) setNode()   {}
func (*Union) setNode()       {}
func (*Head) setNode()        {}
func (*Descendants) setNode() {}
func (*MemberExpr) setNode()  {}

// String renders the expression in MDX syntax.
func (s *SetLiteral) String() string {
	parts := make([]string, len(s.Elems))
	for i, e := range s.Elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (t *TupleExpr) String() string {
	parts := make([]string, len(t.Members))
	for i, m := range t.Members {
		parts[i] = m.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (c *CrossJoin) String() string { return "CrossJoin(" + c.L.String() + ", " + c.R.String() + ")" }
func (u *Union) String() string     { return "Union(" + u.L.String() + ", " + u.R.String() + ")" }
func (h *Head) String() string {
	return "Head(" + h.Set.String() + ", " + itoa(h.N) + ")"
}

func (d *Descendants) String() string {
	s := "Descendants(" + d.Of.String()
	if d.Layer >= 0 {
		s += ", " + itoa(d.Layer)
		switch d.Flag {
		case DescSelfAndAfter:
			s += ", SELF_AND_AFTER"
		case DescAfter:
			s += ", AFTER"
		default:
			s += ", SELF"
		}
	}
	return s + ")"
}

func (m *MemberExpr) String() string {
	parts := make([]string, len(m.Parts))
	for i, p := range m.Parts {
		parts[i] = "[" + p + "]"
	}
	s := strings.Join(parts, ".")
	switch m.Fn {
	case "Members":
		s += ".Members"
	case "Children":
		s += ".Children"
	case "Levels":
		s += ".Levels(" + itoa(m.Level) + ").Members"
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
