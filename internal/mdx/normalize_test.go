package mdx

import (
	"strings"
	"testing"
)

func TestNormalizeCollapsesFormatting(t *testing.T) {
	a := `
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS, -- a comment
       {[PTE].Children} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`
	b := `with perspective { ( Feb ) , ( Apr ) } for Organization dynamic forward visual
select { descendants ( [Time] , 1 , self_and_after ) } on columns , { [PTE] . children } on rows
from Warehouse where ( [Location] . [NY] , [Measures] . [Salary] )`

	na, err := Normalize(a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Normalize(b)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Fatalf("normal forms differ:\n%s\n%s", na, nb)
	}
	if strings.Contains(na, "\n") || strings.Contains(na, "  ") {
		t.Fatalf("normal form retains whitespace runs: %q", na)
	}
	if strings.Contains(na, "comment") {
		t.Fatalf("normal form retains comments: %q", na)
	}
}

func TestNormalizePreservesMemberCase(t *testing.T) {
	n, err := Normalize(`SELECT {[PTE].[joe]} ON COLUMNS FROM W WHERE ([Measures].[Salary], Jan)`)
	if err != nil {
		t.Fatal(err)
	}
	// Bracketed and bare member names keep their case; only keywords
	// fold. "Jan" is not a keyword even though it is a bare identifier.
	for _, want := range []string{"[joe]", "[PTE]", "Jan", "SELECT", "WHERE"} {
		if !strings.Contains(n, want) {
			t.Fatalf("normal form %q lacks %q", n, want)
		}
	}
	nUp, err := Normalize(`select {[PTE].[joe]} on columns from W where ([Measures].[Salary], Jan)`)
	if err != nil {
		t.Fatal(err)
	}
	if n != nUp {
		t.Fatalf("keyword case changed the normal form:\n%s\n%s", n, nUp)
	}
	nOther, err := Normalize(`SELECT {[PTE].[Joe]} ON COLUMNS FROM W WHERE ([Measures].[Salary], Jan)`)
	if err != nil {
		t.Fatal(err)
	}
	if n == nOther {
		t.Fatal("distinct member names normalized to the same key")
	}
}

func TestNormalizeRejectsLexErrors(t *testing.T) {
	if _, err := Normalize("SELECT [unterminated FROM W"); err == nil {
		t.Fatal("want lexical error")
	}
}
