package scenario

import (
	"fmt"
	"math"
	"sort"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// CellDiff reports one cell whose resolved value differs between two
// scenarios. Cell holds the leaf member paths in schema order; A and B
// are the resolved values (nil = absent) in the respective scenarios.
type CellDiff struct {
	Cell []string `json:"cell"`
	A    *float64 `json:"a"`
	B    *float64 `json:"b"`
}

// Diff computes the cell-by-cell difference between two scenarios over
// the same cube. The candidate set is the union of cells either
// scenario's layers touch — plus every base cell when the scenarios
// are pinned to different base snapshots — so the cost scales with the
// edits, not the cube, in the common shared-base case. Each candidate
// resolves through both layer chains; cells equal (or absent) on both
// sides are dropped. diff(A, A) is therefore always empty. Results
// are in deterministic address order.
func Diff(a, b *Scenario) ([]CellDiff, error) {
	if a.cubeName != b.cubeName {
		return nil, fmt.Errorf("scenario: cannot diff %s (cube %q) against %s (cube %q)", a.id, a.cubeName, b.id, b.cubeName)
	}
	layersA, dimsA, _, _ := a.snapshot()
	layersB, dimsB, _, _ := b.snapshot()
	if len(dimsA) != len(dimsB) {
		return nil, fmt.Errorf("scenario: dimension arity mismatch between %s and %s", a.id, b.id)
	}
	chainA := chunk.NewChain(a.base.Store(), layersA)
	chainB := chunk.NewChain(b.base.Store(), layersB)

	candidates := map[string][]int{}
	collect := func(addr []int, v float64) bool {
		key := cube.EncodeAddr(addr)
		if _, seen := candidates[key]; !seen {
			candidates[key] = append([]int(nil), addr...)
		}
		return true
	}
	for _, layers := range [2][]*chunk.Layer{layersA, layersB} {
		for _, l := range layers {
			l.Values().NonNull(collect)
			l.Deletes().NonNull(collect)
		}
	}
	// Different base snapshots: base cells can differ even where no
	// layer touches them, so widen the candidate set to both bases.
	if !(a.base == b.base || (a.baseVersion != 0 && a.baseVersion == b.baseVersion)) {
		a.base.Store().NonNull(collect)
		b.base.Store().NonNull(collect)
	}

	addrs := make([][]int, 0, len(candidates))
	for _, addr := range candidates {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrLess(addrs[i], addrs[j]) })

	var out []CellDiff
	for _, addr := range addrs {
		va := resolveGuarded(chainA, addr)
		vb := resolveGuarded(chainB, addr)
		if math.IsNaN(va) && math.IsNaN(vb) {
			continue
		}
		if !math.IsNaN(va) && !math.IsNaN(vb) && va == vb {
			continue
		}
		out = append(out, CellDiff{
			Cell: cellPaths(addr, dimsA, dimsB),
			A:    nullable(va),
			B:    nullable(vb),
		})
	}
	return out, nil
}

// resolveGuarded reads addr through the chain, treating addresses
// outside every layer and the base (the other scenario's hypothetical
// member space) as absent. Chain.Get already bounds-checks per layer
// and against a chunk-backed base; a map-backed base accepts any
// address.
func resolveGuarded(c *chunk.Chain, addr []int) float64 {
	return c.Get(addr)
}

// cellPaths renders a cell address as leaf member paths, preferring
// the first scenario's dimensions and falling back to the second's for
// ordinals only it knows (its hypothetical members).
func cellPaths(addr []int, dimsA, dimsB []*dimension.Dimension) []string {
	out := make([]string, len(addr))
	for i, o := range addr {
		switch {
		case o < dimsA[i].NumLeaves():
			out[i] = dimsA[i].Path(dimsA[i].Leaves()[o])
		case o < dimsB[i].NumLeaves():
			out[i] = dimsB[i].Path(dimsB[i].Leaves()[o])
		default:
			out[i] = fmt.Sprintf("#%d", o)
		}
	}
	return out
}

// addrLess orders addresses lexicographically.
func addrLess(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// nullable boxes a value, mapping NaN (absent) to nil.
func nullable(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}
