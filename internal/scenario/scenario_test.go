package scenario_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/mdx"
	"whatifolap/internal/scenario"
	"whatifolap/internal/workload"
)

// allSemantics spans the paper's five perspective semantics as MDX
// clauses; allModes the two measure modes.
var allSemantics = []string{
	"STATIC",
	"DYNAMIC FORWARD",
	"DYNAMIC BACKWARD",
	"EXTENDED FORWARD",
	"EXTENDED BACKWARD",
}

var allModes = []string{"VISUAL", "NONVISUAL"}

func newWorkforce(t testing.TB) *workload.Workforce {
	t.Helper()
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// perspectiveQuery builds one perspective query over the workforce's
// first changing employee (qualified by its January department path,
// since the bare name is ambiguous across instances).
func perspectiveQuery(t testing.TB, w *workload.Workforce, sem, mode string) string {
	t.Helper()
	dept := w.Cube.DimByName(workload.DimDepartment)
	b := w.Cube.BindingFor(workload.DimDepartment)
	inst := dept.Path(b.InstanceAt(w.Changing[0], 0))
	return fmt.Sprintf(`
WITH PERSPECTIVE {(Jan), (Apr), (Jul), (Oct)} FOR Department %s %s
SELECT {[Account].Levels(0).Members} ON COLUMNS,
       {CrossJoin({[%s]}, {Descendants([Period], 1, SELF_AND_AFTER)})} ON ROWS
FROM [App].[Db]
WHERE ([Scenario].[Current], [Currency].[Local], [Version].[BU Version_1], [ValueType].[HSP_InputValue])`,
		sem, mode, inst)
}

// queryScenario evaluates a query against the scenario's layered view.
func queryScenario(t testing.TB, s *scenario.Scenario, query string, workers int) string {
	t.Helper()
	g, _, err := evalScenario(s, query, workers)
	if err != nil {
		t.Fatalf("scenario %s: %v", s.ID(), err)
	}
	return g
}

func evalScenario(s *scenario.Scenario, query string, workers int) (string, int, error) {
	view, _, err := s.View()
	if err != nil {
		return "", 0, err
	}
	q, err := mdx.Parse(query)
	if err != nil {
		return "", 0, err
	}
	rc := mdx.RunContext{Ctx: context.Background(), Workers: workers}
	g, stats, err := mdx.EvaluateScenario(rc, view, q)
	if err != nil {
		return "", 0, err
	}
	return g.CSV(), stats.ScanWorkers, nil
}

// leafAddr resolves member refs (dimension name → ref) to a leaf
// address under the cube's dimensions, defaulting omitted dimensions
// to ordinal 0 — the same convention scenario cell edits use.
func leafAddr(t testing.TB, c *cube.Cube, cell map[string]string) []int {
	t.Helper()
	dims := c.Dims()
	addr := make([]int, len(dims))
	for name, ref := range cell {
		found := false
		for i, d := range dims {
			if d.Name() != name {
				continue
			}
			id, err := d.Lookup(ref)
			if err != nil {
				t.Fatal(err)
			}
			addr[i] = d.Member(id).LeafOrdinal
			found = true
		}
		if !found {
			t.Fatalf("no dimension %q", name)
		}
	}
	return addr
}

// TestScenarioForkBitIdenticalUntilDivergence is the fork property
// test: a forked scenario's query results are bit-identical to its
// parent's across all 5 semantics × 2 modes until the fork's first
// divergent edit, diff(A, A) is always empty, and the parent's results
// never move when the fork edits.
func TestScenarioForkBitIdenticalUntilDivergence(t *testing.T) {
	w := newWorkforce(t)
	m := scenario.NewManager()
	parent, err := m.Create("plan-a", "wf", 1, w.Cube)
	if err != nil {
		t.Fatal(err)
	}

	// Seed the parent with a few random cell edits so forks inherit a
	// non-trivial layer chain.
	r := rand.New(rand.NewSource(7))
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	randomCell := func() map[string]string {
		// Employees 10.. are non-changing, so bare names are unique.
		return map[string]string{
			workload.DimDepartment: fmt.Sprintf("Emp%05d", 10+r.Intn(50)),
			workload.DimPeriod:     months[r.Intn(len(months))],
			workload.DimAccount:    fmt.Sprintf("Acct%03d", r.Intn(4)),
		}
	}
	var seed []scenario.Edit
	for i := 0; i < 8; i++ {
		seed = append(seed, scenario.Edit{Op: scenario.OpSet, Cell: randomCell(), Value: float64(1000 + r.Intn(9000))})
	}
	seed = append(seed, scenario.Edit{Op: scenario.OpDelete, Cell: randomCell()})
	if _, err := parent.Apply(seed); err != nil {
		t.Fatal(err)
	}

	fork, err := m.Fork(parent.ID(), "plan-b")
	if err != nil {
		t.Fatal(err)
	}

	type combo struct{ sem, mode string }
	parentGrids := map[combo]string{}
	for _, sem := range allSemantics {
		for _, mode := range allModes {
			q := perspectiveQuery(t, w, sem, mode)
			pg := queryScenario(t, parent, q, 2)
			fg := queryScenario(t, fork, q, 2)
			if pg != fg {
				t.Fatalf("%s %s: fork diverged from parent before any fork edit\nparent:\n%s\nfork:\n%s", sem, mode, pg, fg)
			}
			parentGrids[combo{sem, mode}] = pg
		}
	}

	for _, pair := range [][2]*scenario.Scenario{{parent, parent}, {fork, fork}, {parent, fork}} {
		d, err := scenario.Diff(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(d) != 0 {
			t.Fatalf("diff(%s, %s) = %d cells, want empty", pair[0].ID(), pair[1].ID(), len(d))
		}
	}

	// First divergent edit: bump a cell the queries cover (the changing
	// employee's January salary under its January instance).
	dept := w.Cube.DimByName(workload.DimDepartment)
	b := w.Cube.BindingFor(workload.DimDepartment)
	inst := dept.Path(b.InstanceAt(w.Changing[0], 0))
	divergent := map[string]string{
		workload.DimDepartment: inst,
		workload.DimPeriod:     "Jan",
		workload.DimAccount:    "Acct000",
	}
	if _, err := fork.Apply([]scenario.Edit{{Op: scenario.OpSet, Cell: divergent, Value: 123456}}); err != nil {
		t.Fatal(err)
	}

	d, err := scenario.Diff(parent, fork)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 {
		t.Fatalf("diff after one divergent edit = %v, want exactly 1 cell", d)
	}
	if d[0].B == nil || *d[0].B != 123456 {
		t.Fatalf("diff B side = %v, want 123456", d[0].B)
	}
	wantAddr := leafAddr(t, w.Cube, divergent)
	base := w.Cube.Store().Get(wantAddr)
	if d[0].A == nil || *d[0].A != base {
		t.Fatalf("diff A side = %v, want base value %v", d[0].A, base)
	}

	diverged := false
	for _, sem := range allSemantics {
		for _, mode := range allModes {
			q := perspectiveQuery(t, w, sem, mode)
			if got := queryScenario(t, parent, q, 2); got != parentGrids[combo{sem, mode}] {
				t.Fatalf("%s %s: parent results moved after fork edit", sem, mode)
			}
			if queryScenario(t, fork, q, 2) != parentGrids[combo{sem, mode}] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("no query combo observed the divergent edit")
	}
}

// TestScenarioDiffExactCells pins diff output to exactly the edited
// cells, with base values on the unedited side and nil for deletes.
func TestScenarioDiffExactCells(t *testing.T) {
	w := newWorkforce(t)
	m := scenario.NewManager()
	parent, err := m.Create("base", "wf", 1, w.Cube)
	if err != nil {
		t.Fatal(err)
	}
	fork, err := m.Fork(parent.ID(), "")
	if err != nil {
		t.Fatal(err)
	}

	set1 := map[string]string{workload.DimDepartment: "Emp00020", workload.DimPeriod: "Mar", workload.DimAccount: "Acct001"}
	set2 := map[string]string{workload.DimDepartment: "Emp00021", workload.DimPeriod: "Jul", workload.DimAccount: "Acct002"}
	del := map[string]string{workload.DimDepartment: "Emp00022", workload.DimPeriod: "Nov", workload.DimAccount: "Acct003"}
	if _, err := fork.Apply([]scenario.Edit{
		{Op: scenario.OpSet, Cell: set1, Value: 111},
		{Op: scenario.OpSet, Cell: set2, Value: 222},
		{Op: scenario.OpDelete, Cell: del},
	}); err != nil {
		t.Fatal(err)
	}

	d, err := scenario.Diff(parent, fork)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 3 {
		t.Fatalf("diff = %d cells, want 3: %v", len(d), d)
	}
	byCell := map[string]scenario.CellDiff{}
	for _, cd := range d {
		byCell[strings.Join(cd.Cell, "|")] = cd
	}
	check := func(cell map[string]string, wantB *float64) {
		t.Helper()
		addr := leafAddr(t, w.Cube, cell)
		dims := w.Cube.Dims()
		paths := make([]string, len(addr))
		for i, o := range addr {
			paths[i] = dims[i].Path(dims[i].Leaves()[o])
		}
		cd, ok := byCell[strings.Join(paths, "|")]
		if !ok {
			t.Fatalf("cell %v missing from diff %v", paths, d)
		}
		base := w.Cube.Store().Get(addr)
		if cd.A == nil || *cd.A != base {
			t.Fatalf("cell %v: A = %v, want base %v", paths, cd.A, base)
		}
		if wantB == nil {
			if cd.B != nil {
				t.Fatalf("cell %v: B = %v, want deleted (nil)", paths, *cd.B)
			}
		} else if cd.B == nil || *cd.B != *wantB {
			t.Fatalf("cell %v: B = %v, want %v", paths, cd.B, *wantB)
		}
	}
	v1, v2 := 111.0, 222.0
	check(set1, &v1)
	check(set2, &v2)
	check(del, nil)

	// Reverse orientation swaps sides.
	rd, err := scenario.Diff(fork, parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd) != 3 {
		t.Fatalf("reverse diff = %d cells, want 3", len(rd))
	}
	for _, cd := range rd {
		if cd.B == nil {
			t.Fatalf("reverse diff: parent side absent for %v", cd.Cell)
		}
	}
}

// TestScenarioHypotheticalMemberRollup introduces a hypothetical new
// account under AllAccounts, writes a cell under it, and checks the
// parent rollup includes it — while the base cube's dimension is
// untouched.
func TestScenarioHypotheticalMemberRollup(t *testing.T) {
	w := newWorkforce(t)
	baseLeaves := w.Cube.DimByName(workload.DimAccount).NumLeaves()
	m := scenario.NewManager()
	s, err := m.Create("bonus-plan", "wf", 1, w.Cube)
	if err != nil {
		t.Fatal(err)
	}

	query := `
SELECT {[Account].[AllAccounts]} ON COLUMNS,
       {[Emp00010]} ON ROWS
FROM [App].[Db]
WHERE ([Period].[Jan], [Scenario].[Current], [Currency].[Local], [Version].[BU Version_1], [ValueType].[HSP_InputValue])`
	before := queryScenario(t, s, query, 1)

	if _, err := s.Apply([]scenario.Edit{
		{Op: scenario.OpNewMember, Dim: workload.DimAccount, Parent: "AllAccounts", Name: "Bonus"},
		{Op: scenario.OpSet, Cell: map[string]string{
			workload.DimDepartment: "Emp00010",
			workload.DimPeriod:     "Jan",
			workload.DimAccount:    "Bonus",
		}, Value: 500},
	}); err != nil {
		t.Fatal(err)
	}

	after := queryScenario(t, s, query, 1)
	wantDelta := 500.0
	db, da := singleCell(t, before), singleCell(t, after)
	if math.Abs(da-db-wantDelta) > 1e-6 {
		t.Fatalf("AllAccounts rollup: before %v, after %v, want delta %v", db, da, wantDelta)
	}

	// The base cube never sees the hypothetical member.
	if got := w.Cube.DimByName(workload.DimAccount).NumLeaves(); got != baseLeaves {
		t.Fatalf("base Account leaves = %d, want %d (scenario edit leaked)", got, baseLeaves)
	}
	info := s.Info()
	if info.NewMembers != 1 {
		t.Fatalf("NewMembers = %d, want 1", info.NewMembers)
	}

	// A materialized (commit-shape) cube answers identically.
	mat, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	q, err := mdx.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := mdx.NewEvaluator(mat).RunQueryStatsWith(mdx.RunContext{Ctx: context.Background()}, q)
	if err != nil {
		t.Fatal(err)
	}
	if g.CSV() != after {
		t.Fatalf("materialized cube answers differently:\nview:\n%s\nmaterialized:\n%s", after, g.CSV())
	}
}

// singleCell extracts the sole data value from a 1×1 CSV grid.
func singleCell(t testing.TB, csv string) float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	last := lines[len(lines)-1]
	cols := strings.Split(last, ",")
	var v float64
	if _, err := fmt.Sscanf(cols[len(cols)-1], "%g", &v); err != nil {
		t.Fatalf("cannot parse cell from %q: %v", csv, err)
	}
	return v
}

// TestScenarioValidityEdit re-windows a hypothetical employee: the
// member is introduced under a department, claims Jul–Dec, and its
// cells only roll up into months inside the window's instance — the
// base binding is untouched.
func TestScenarioValidityEdit(t *testing.T) {
	w := newWorkforce(t)
	m := scenario.NewManager()
	s, err := m.Create("new-hire", "wf", 1, w.Cube)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]scenario.Edit{
		{Op: scenario.OpNewMember, Dim: workload.DimDepartment, Parent: "Dept00", Name: "EmpHypo"},
		{Op: scenario.OpValidity, Dim: workload.DimDepartment, Member: "EmpHypo", From: "Jul", To: "Dec"},
		{Op: scenario.OpSet, Cell: map[string]string{
			workload.DimDepartment: "EmpHypo",
			workload.DimPeriod:     "Aug",
			workload.DimAccount:    "Acct000",
		}, Value: 7000},
	}); err != nil {
		t.Fatal(err)
	}

	view, _, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	vd := view.DimByName(workload.DimDepartment)
	id, err := vd.Lookup("Dept00/EmpHypo")
	if err != nil {
		t.Fatal(err)
	}
	vb := view.BindingFor(workload.DimDepartment)
	vs := vb.ValiditySet(id)
	for month, want := range map[int]bool{0: false, 5: false, 6: true, 11: true} {
		if vs.Contains(month) != want {
			t.Fatalf("validity(EmpHypo, month %d) = %v, want %v", month, vs.Contains(month), want)
		}
	}

	// Base binding has no such instance.
	if _, err := w.Cube.DimByName(workload.DimDepartment).Lookup("Dept00/EmpHypo"); err == nil {
		t.Fatal("hypothetical member leaked into the base dimension")
	}

	// All 5 × 2 perspective combos still evaluate over the widened view.
	for _, sem := range allSemantics {
		for _, mode := range allModes {
			q := perspectiveQuery(t, w, sem, mode)
			if _, _, err := evalScenario(s, q, 2); err != nil {
				t.Fatalf("%s %s: %v", sem, mode, err)
			}
		}
	}
}

// TestScenarioSerialParallelEquivalence checks that scenario-scoped
// engine queries produce byte-identical grids serial vs parallel, and
// that the parallel run actually fanned out.
func TestScenarioSerialParallelEquivalence(t *testing.T) {
	w := newWorkforce(t)
	m := scenario.NewManager()
	s, err := m.Create("par", "wf", 1, w.Cube)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]scenario.Edit{
		{Op: scenario.OpSet, Cell: map[string]string{workload.DimDepartment: "Emp00030", workload.DimPeriod: "May", workload.DimAccount: "Acct000"}, Value: 42},
		{Op: scenario.OpDelete, Cell: map[string]string{workload.DimDepartment: "Emp00031", workload.DimPeriod: "Sep", workload.DimAccount: "Acct001"}},
	}); err != nil {
		t.Fatal(err)
	}
	for _, sem := range allSemantics {
		q := perspectiveQuery(t, w, sem, "VISUAL")
		serial, sw, err := evalScenario(s, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sw != 1 {
			t.Fatalf("%s: serial ScanWorkers = %d, want 1", sem, sw)
		}
		par, pw, err := evalScenario(s, q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if par != serial {
			t.Fatalf("%s: parallel grid differs from serial\nserial:\n%s\nparallel:\n%s", sem, serial, par)
		}
		if pw < 2 {
			t.Fatalf("%s: parallel ScanWorkers = %d, want ≥ 2 (engine path not taken?)", sem, pw)
		}
	}
}

// TestScenarioApplyAtomic checks that a batch failing halfway leaves
// the scenario untouched: no revision bump, no layers, no dims.
func TestScenarioApplyAtomic(t *testing.T) {
	w := newWorkforce(t)
	s, err := scenario.NewLocal("atomic", w.Cube)
	if err != nil {
		t.Fatal(err)
	}
	q := `
SELECT {[Account].[AllAccounts]} ON COLUMNS, {[Emp00010]} ON ROWS
FROM [App].[Db]
WHERE ([Period].[Jan], [Scenario].[Current], [Currency].[Local], [Version].[BU Version_1], [ValueType].[HSP_InputValue])`
	before := queryScenario(t, s, q, 1)

	bad := [][]scenario.Edit{
		nil,              // empty batch
		{{Op: "rename"}}, // unknown op
		{
			{Op: scenario.OpNewMember, Dim: workload.DimAccount, Parent: "AllAccounts", Name: "Bonus"},
			{Op: scenario.OpSet, Cell: map[string]string{workload.DimAccount: "NoSuchAccount"}, Value: 1},
		}, // structural edit then failing cell edit
		{{Op: scenario.OpNewMember, Dim: workload.DimDepartment, Parent: "Dept00/Emp00000", Name: "X"}},  // leaf parent
		{{Op: scenario.OpValidity, Dim: workload.DimAccount, Member: "Acct000", From: "Jan", To: "Feb"}}, // no varying binding
	}
	for i, batch := range bad {
		if _, err := s.Apply(batch); err == nil {
			t.Fatalf("bad batch %d applied without error", i)
		}
	}
	if rev := s.Revision(); rev != 0 {
		t.Fatalf("revision after failed batches = %d, want 0", rev)
	}
	if info := s.Info(); info.Layers != 0 || info.NewMembers != 0 {
		t.Fatalf("failed batches left state behind: %+v", info)
	}
	if after := queryScenario(t, s, q, 1); after != before {
		t.Fatal("failed batches changed query results")
	}
	// The aborted new_member try must not block a clean retry.
	if _, err := s.Apply([]scenario.Edit{
		{Op: scenario.OpNewMember, Dim: workload.DimAccount, Parent: "AllAccounts", Name: "Bonus"},
	}); err != nil {
		t.Fatalf("retry after aborted batch: %v", err)
	}
}

// TestScenarioConcurrentForkEditQuery races editors, forkers, queriers
// and differs over one scenario tree. Run under -race this is the
// subsystem's thread-safety proof: snapshots handed to queries must
// never observe a torn layer slice or dimension set.
func TestScenarioConcurrentForkEditQuery(t *testing.T) {
	w := newWorkforce(t)
	m := scenario.NewManager()
	parent, err := m.Create("root", "wf", 1, w.Cube)
	if err != nil {
		t.Fatal(err)
	}
	query := perspectiveQuery(t, w, "DYNAMIC FORWARD", "VISUAL")

	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(4)
		// Editor: keeps appending cell and structural edits to the parent.
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, err := parent.Apply([]scenario.Edit{
					{Op: scenario.OpNewMember, Dim: workload.DimAccount, Parent: "AllAccounts", Name: fmt.Sprintf("Acct-g%d-i%d", g, i)},
					{Op: scenario.OpSet, Cell: map[string]string{
						workload.DimDepartment: fmt.Sprintf("Emp%05d", 10+g),
						workload.DimPeriod:     "Jun",
						workload.DimAccount:    "Acct000",
					}, Value: float64(g*100 + i)},
				})
				if err != nil {
					errs <- fmt.Errorf("editor %d: %w", g, err)
					return
				}
			}
		}(g)
		// Forker: forks the parent and edits the fork.
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f, err := m.Fork(parent.ID(), "")
				if err != nil {
					errs <- fmt.Errorf("forker %d: %w", g, err)
					return
				}
				if _, err := f.Apply([]scenario.Edit{{Op: scenario.OpSet, Cell: map[string]string{
					workload.DimDepartment: fmt.Sprintf("Emp%05d", 20+g),
					workload.DimPeriod:     "Oct",
					workload.DimAccount:    "Acct001",
				}, Value: float64(i)}}); err != nil {
					errs <- fmt.Errorf("forker %d edit: %w", g, err)
					return
				}
				if _, err := scenario.Diff(parent, f); err != nil {
					errs <- fmt.Errorf("forker %d diff: %w", g, err)
					return
				}
			}
		}(g)
		// Querier: evaluates the parent's live view.
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, _, err := evalScenario(parent, query, 2); err != nil {
					errs <- fmt.Errorf("querier %d: %w", g, err)
					return
				}
			}
		}(g)
		// Lister: walks manager state.
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, info := range m.List() {
					if info.ID == "" {
						errs <- fmt.Errorf("lister %d: empty id", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if rev := parent.Revision(); rev != 4*iters {
		t.Fatalf("parent revision = %d, want %d", rev, 4*iters)
	}
}

// TestScenarioForkEditDiffRunEncodedBase reruns the fork-and-edit flow
// with the base cube's chunks force run-encoded: every query grid is
// bit-identical to a plain-store twin across all 5 semantics × 2 modes,
// diff reports exactly the divergent cell, and the base chunks stay
// run-encoded throughout — scenario edits land in layers and must never
// trigger a copy-on-write decode of the base.
func TestScenarioForkEditDiffRunEncodedBase(t *testing.T) {
	wPlain := newWorkforce(t)
	wRle := newWorkforce(t) // same config + seed → identical cube
	st := wRle.Cube.Store().(*chunk.Store)
	if n := st.ForceRunEncodeAll(); n == 0 {
		t.Fatal("nothing run-encoded")
	}

	m := scenario.NewManager()
	plain, err := m.Create("plain", "wf", 1, wPlain.Cube)
	if err != nil {
		t.Fatal(err)
	}
	rle, err := m.Create("rle", "wf", 1, wRle.Cube)
	if err != nil {
		t.Fatal(err)
	}
	edit := map[string]string{
		workload.DimDepartment: "Emp00020",
		workload.DimPeriod:     "Mar",
		workload.DimAccount:    "Acct001",
	}
	for _, s := range []*scenario.Scenario{plain, rle} {
		if _, err := s.Apply([]scenario.Edit{{Op: scenario.OpSet, Cell: edit, Value: 4242}}); err != nil {
			t.Fatal(err)
		}
	}

	for _, sem := range allSemantics {
		for _, mode := range allModes {
			q := perspectiveQuery(t, wPlain, sem, mode)
			pg := queryScenario(t, plain, q, 2)
			rg := queryScenario(t, rle, perspectiveQuery(t, wRle, sem, mode), 2)
			if pg != rg {
				t.Fatalf("%s %s: run-encoded base diverged from plain\nplain:\n%s\nrle:\n%s", sem, mode, pg, rg)
			}
		}
	}

	// Fork-and-edit: diff is cell-exact against the parent.
	fork, err := m.Fork(rle.ID(), "rle-fork")
	if err != nil {
		t.Fatal(err)
	}
	divergent := map[string]string{
		workload.DimDepartment: "Emp00021",
		workload.DimPeriod:     "Jul",
		workload.DimAccount:    "Acct002",
	}
	if _, err := fork.Apply([]scenario.Edit{{Op: scenario.OpSet, Cell: divergent, Value: 777}}); err != nil {
		t.Fatal(err)
	}
	d, err := scenario.Diff(rle, fork)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 {
		t.Fatalf("diff = %d cells, want exactly the divergent cell: %v", len(d), d)
	}
	if d[0].B == nil || *d[0].B != 777 {
		t.Fatalf("diff B side = %v, want 777", d[0].B)
	}
	base := wRle.Cube.Store().Get(leafAddr(t, wRle.Cube, divergent))
	if d[0].A == nil || *d[0].A != base {
		t.Fatalf("diff A side = %v, want base value %v", d[0].A, base)
	}

	// The base store still holds only run-encoded chunks.
	for _, id := range st.ChunkIDs() {
		if c := st.ReadChunk(id); c != nil && c.Rep() != chunk.RunEncoded {
			t.Fatalf("base chunk %d decoded to %v during scenario work", id, c.Rep())
		}
	}
}
