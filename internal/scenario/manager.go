package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"whatifolap/internal/cube"
)

// Manager owns the server's scenario workspaces: id allocation,
// lookup, forking and discard. Scenarios are in-memory objects pinned
// to immutable base cube snapshots; restarting the server discards
// them (committing publishes a scenario's state as a durable catalog
// version first).
type Manager struct {
	mu   sync.Mutex
	seq  int
	byID map[string]*Scenario
}

// NewManager creates an empty scenario manager.
func NewManager() *Manager {
	return &Manager{byID: make(map[string]*Scenario)}
}

// Create registers a new scenario over the given base cube snapshot
// (cubeName/baseVersion identify it in the catalog) and returns it.
func (m *Manager) Create(name, cubeName string, baseVersion int64, base *cube.Cube) (*Scenario, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	id := "s" + strconv.Itoa(m.seq)
	if name == "" {
		name = id
	}
	s, err := newScenario(id, name, cubeName, baseVersion, base)
	if err != nil {
		m.seq--
		return nil, err
	}
	m.byID[id] = s
	return s, nil
}

// Get returns the scenario with the given id.
func (m *Manager) Get(id string) (*Scenario, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.byID[id]
	return s, ok
}

// List returns summaries of all scenarios, ordered by id.
func (m *Manager) List() []Info {
	m.mu.Lock()
	scenarios := make([]*Scenario, 0, len(m.byID))
	for _, s := range m.byID {
		scenarios = append(scenarios, s)
	}
	m.mu.Unlock()
	out := make([]Info, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, s.Info())
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric id order: s2 before s10.
		ni, _ := strconv.Atoi(out[i].ID[1:])
		nj, _ := strconv.Atoi(out[j].ID[1:])
		return ni < nj
	})
	return out
}

// Delete discards the scenario. Its sealed layers stay alive for forks
// that share them.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.byID[id]
	delete(m.byID, id)
	return ok
}

// Fork creates a child scenario sharing the parent's sealed layer
// chain and dimension set — O(layers), independent of how many cells
// the layers hold. The child starts at revision 0; its first edit
// appends a private layer (and, for structural edits, clones the
// dimensions), so parent and child diverge without ever copying shared
// state.
func (m *Manager) Fork(parentID, name string) (*Scenario, error) {
	m.mu.Lock()
	parent, ok := m.byID[parentID]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("scenario: no scenario %q", parentID)
	}
	m.seq++
	id := "s" + strconv.Itoa(m.seq)
	if name == "" {
		name = parent.name + "-fork"
	}
	m.mu.Unlock()

	parent.mu.Lock()
	child := &Scenario{
		id:          id,
		name:        name,
		cubeName:    parent.cubeName,
		baseVersion: parent.baseVersion,
		base:        parent.base,
		parentID:    parent.id,
		layers:      parent.layers, // sealed + copy-on-append: safe to share
		dims:        parent.dims,
		bindings:    parent.bindings,
		geom:        parent.geom,
		newMembers:  parent.newMembers,
	}
	parent.mu.Unlock()

	m.mu.Lock()
	m.byID[id] = child
	m.mu.Unlock()
	return child, nil
}
