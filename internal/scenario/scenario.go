// Package scenario implements scenario workspaces: named, versioned
// chains of overlay deltas pinned to a base cube version, the
// server-side realization of the paper's interactive what-if sessions.
// A scenario accumulates edit batches as sealed chunk.Layer deltas
// (cell writes and tombstones) plus dimension-edit deltas (hypothetical
// new members, validity-window reassignments) over an immutable base
// cube snapshot. Queries evaluate against a layered view — base chunks
// resolved through the layer chain, newest layer wins, never copying
// the base — forks share the parent's sealed layers in O(layers), and
// a diff walks exactly the cells the two scenarios' layers touch.
//
// Concurrency: a Scenario's mutable state (layers, dims, revision) is
// guarded by its mutex; every edit batch produces a fresh layer and a
// fresh layer slice, so snapshots handed to queries are immutable and
// never race with later edits. Structural edits clone the dimension
// set before mutating it, so views and forks holding the previous
// dimensions stay valid.
package scenario

import (
	"fmt"
	"sync"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// Edit op names. An edit batch (one Apply call) may mix ops;
// structural ops (new_member, validity) apply before cell ops (set,
// delete) so a batch can introduce a member and write under it.
const (
	OpSet       = "set"
	OpDelete    = "delete"
	OpNewMember = "new_member"
	OpValidity  = "validity"
)

// Edit is one scenario edit. The zero fields irrelevant to an op are
// ignored.
type Edit struct {
	// Op selects the edit kind: set, delete, new_member, validity.
	Op string `json:"op"`

	// Cell addresses a leaf cell for set/delete: dimension name →
	// member reference (path or unambiguous name). Omitted dimensions
	// default to leaf ordinal 0.
	Cell map[string]string `json:"cell,omitempty"`
	// Value is the cell value for set.
	Value float64 `json:"value,omitempty"`

	// Dim names the dimension for new_member and validity.
	Dim string `json:"dim,omitempty"`
	// Parent is the parent path for new_member ("" = dimension root).
	Parent string `json:"parent,omitempty"`
	// Name is the new member's simple name for new_member.
	Name string `json:"name,omitempty"`

	// Member references the leaf instance for validity.
	Member string `json:"member,omitempty"`
	// From/To reference parameter-dimension leaves bounding the
	// validity window (inclusive) for validity.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
}

// Info is a scenario's JSON-facing summary.
type Info struct {
	ID               string `json:"id"`
	Name             string `json:"name"`
	Cube             string `json:"cube"`
	BaseVersion      int64  `json:"base_version"`
	Parent           string `json:"parent,omitempty"`
	Revision         int64  `json:"revision"`
	Layers           int    `json:"layers"`
	CellsOverridden  int    `json:"cells_overridden"`
	NewMembers       int    `json:"new_members"`
	CommittedVersion int64  `json:"committed_version,omitempty"`
}

// Scenario is one workspace: an immutable base cube snapshot under an
// append-only chain of sealed delta layers, plus (once structurally
// edited) a private dimension set.
type Scenario struct {
	id          string
	cubeName    string
	baseVersion int64
	base        *cube.Cube

	mu       sync.Mutex
	name     string
	parentID string
	revision int64
	// layers are sealed: Apply builds a brand-new slice per batch
	// (never appending into a backing array a fork might share), and a
	// layer is never mutated once it is in the slice.
	layers []*chunk.Layer
	// dims/bindings are nil while the scenario shares the base cube's
	// dimensions; the first structural edit clones them (and every
	// later structural edit clones again, since a fork may share the
	// current set).
	dims     []*dimension.Dimension
	bindings []*dimension.Binding
	// geom is the current layer geometry: the base chunking, widened
	// along dimensions that gained hypothetical members.
	geom             *chunk.Geometry
	newMembers       int
	committedVersion int64
}

// newScenario builds a workspace over the base snapshot.
func newScenario(id, name, cubeName string, baseVersion int64, base *cube.Cube) (*Scenario, error) {
	s := &Scenario{id: id, name: name, cubeName: cubeName, baseVersion: baseVersion, base: base}
	if err := s.recomputeGeometry(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewLocal creates a standalone scenario over a cube, outside any
// manager or catalog — the whatif CLI uses it to apply an edit script
// before querying. The id is the name; the base version is 0.
func NewLocal(name string, base *cube.Cube) (*Scenario, error) {
	return newScenario(name, name, "", 0, base)
}

// ID returns the scenario's identifier.
func (s *Scenario) ID() string { return s.id }

// CubeName returns the catalog cube the scenario is pinned to.
func (s *Scenario) CubeName() string { return s.cubeName }

// BaseVersion returns the pinned catalog cube version.
func (s *Scenario) BaseVersion() int64 { return s.baseVersion }

// Revision returns the edit revision (one bump per applied batch).
func (s *Scenario) Revision() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revision
}

// Info returns the scenario's summary.
func (s *Scenario) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	cells := 0
	for _, l := range s.layers {
		cells += l.Cells()
	}
	return Info{
		ID: s.id, Name: s.name, Cube: s.cubeName,
		BaseVersion: s.baseVersion, Parent: s.parentID,
		Revision: s.revision, Layers: len(s.layers),
		CellsOverridden: cells, NewMembers: s.newMembers,
		CommittedVersion: s.committedVersion,
	}
}

// MarkCommitted records the catalog version a commit published.
func (s *Scenario) MarkCommitted(v int64) {
	s.mu.Lock()
	s.committedVersion = v
	s.mu.Unlock()
}

// curDims returns the scenario's dimensions (base's when unedited).
// Caller holds s.mu.
func (s *Scenario) curDims() []*dimension.Dimension {
	if s.dims != nil {
		return s.dims
	}
	return s.base.Dims()
}

// curBindings returns the scenario's bindings (base's when unedited).
// Caller holds s.mu.
func (s *Scenario) curBindings() []*dimension.Binding {
	if s.bindings != nil {
		return s.bindings
	}
	return s.base.Bindings()
}

// recomputeGeometry rebuilds the layer geometry from the current
// dimension extents over the base chunking. Caller holds s.mu (or has
// exclusive access during construction).
func (s *Scenario) recomputeGeometry() error {
	dims := s.curDims()
	ext := make([]int, len(dims))
	for i, d := range dims {
		ext[i] = d.NumLeaves()
	}
	var cd []int
	if st, ok := s.base.Store().(*chunk.Store); ok {
		cd = st.Geometry().ChunkDims
	} else {
		cd = ext
	}
	g, err := chunk.NewGeometry(ext, cd)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.id, err)
	}
	s.geom = g
	return nil
}

// privatize clones the current dimension set and rebases the bindings
// onto the clones, making structural edits invisible to the base cube
// and to forks sharing the previous set. Caller holds s.mu.
func (s *Scenario) privatize() error {
	cur, curB := s.curDims(), s.curBindings()
	idx := make(map[*dimension.Dimension]int, len(cur))
	clones := make([]*dimension.Dimension, len(cur))
	for i, d := range cur {
		clones[i] = d.Clone()
		idx[d] = i
	}
	nb := make([]*dimension.Binding, len(curB))
	for i, b := range curB {
		vi, okV := idx[b.Varying]
		pi, okP := idx[b.Param]
		if !okV || !okP {
			return fmt.Errorf("scenario %s: binding %s/%s references dimensions outside the schema", s.id, b.Varying.Name(), b.Param.Name())
		}
		nb[i] = b.Clone(clones[vi], clones[pi])
	}
	s.dims, s.bindings = clones, nb
	return nil
}

// dimIndex finds the schema position of a dimension by name. Caller
// holds s.mu.
func (s *Scenario) dimIndex(name string) (int, error) {
	for i, d := range s.curDims() {
		if d.Name() == name {
			return i, nil
		}
	}
	return -1, fmt.Errorf("scenario %s: no dimension %q", s.id, name)
}

// resolveCell turns a dim-name→member-ref map into a leaf address
// under the current dimensions. Omitted dimensions default to leaf
// ordinal 0. Caller holds s.mu.
func (s *Scenario) resolveCell(cell map[string]string) ([]int, error) {
	dims := s.curDims()
	byName := make(map[string]int, len(dims))
	addr := make([]int, len(dims))
	for i, d := range dims {
		byName[d.Name()] = i
	}
	for name, ref := range cell {
		i, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("scenario %s: no dimension %q in cell address", s.id, name)
		}
		id, err := dims[i].Lookup(ref)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.id, err)
		}
		m := dims[i].Member(id)
		if m.LeafOrdinal < 0 {
			return nil, fmt.Errorf("scenario %s: cell edits address leaf members, but %q is not a leaf of %q", s.id, ref, name)
		}
		addr[i] = m.LeafOrdinal
	}
	return addr, nil
}

// Apply applies one edit batch and returns the new revision.
// Structural ops (new_member, validity) apply first, in order; cell
// ops (set, delete) then build one new sealed layer under the
// (possibly widened) geometry. The batch is atomic: on error the
// scenario is unchanged.
func (s *Scenario) Apply(edits []Edit) (int64, error) {
	if len(edits) == 0 {
		return 0, fmt.Errorf("scenario %s: empty edit batch", s.id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Stage on copies; commit at the end.
	savedDims, savedBindings, savedGeom, savedNew := s.dims, s.bindings, s.geom, s.newMembers
	restore := func() {
		s.dims, s.bindings, s.geom, s.newMembers = savedDims, savedBindings, savedGeom, savedNew
	}

	structural := false
	for _, e := range edits {
		switch e.Op {
		case OpNewMember, OpValidity:
			structural = true
		case OpSet, OpDelete:
		default:
			return 0, fmt.Errorf("scenario %s: unknown edit op %q", s.id, e.Op)
		}
	}
	if structural {
		if err := s.privatize(); err != nil {
			restore()
			return 0, err
		}
		newMembers := 0
		for _, e := range edits {
			switch e.Op {
			case OpNewMember:
				di, err := s.dimIndex(e.Dim)
				if err != nil {
					restore()
					return 0, err
				}
				if _, err := s.dims[di].AddHypothetical(e.Parent, e.Name); err != nil {
					restore()
					return 0, fmt.Errorf("scenario %s: %w", s.id, err)
				}
				newMembers++
			case OpValidity:
				if err := s.applyValidity(e); err != nil {
					restore()
					return 0, err
				}
			}
		}
		if err := s.recomputeGeometry(); err != nil {
			restore()
			return 0, err
		}
		s.newMembers += newMembers
	}

	layer := chunk.NewLayer(s.geom)
	for _, e := range edits {
		switch e.Op {
		case OpSet, OpDelete:
			addr, err := s.resolveCell(e.Cell)
			if err != nil {
				layer.Seal()
				restore()
				return 0, err
			}
			if e.Op == OpSet {
				layer.Set(addr, e.Value)
			} else {
				layer.Delete(addr)
			}
		}
	}
	// Seal before publishing: a chain snapshot must never observe a
	// mutable layer (releasepair pairs NewLayer with Seal).
	layer.Seal()
	if layer.Cells() > 0 {
		// A brand-new slice per batch: forks share the old backing
		// array, so appending in place could clobber a sibling's
		// append at the same index.
		s.layers = append(append([]*chunk.Layer(nil), s.layers...), layer)
	}
	s.revision++
	return s.revision, nil
}

// applyValidity reassigns a validity window: the instance named by
// e.Member claims parameter leaves [e.From, e.To] from its sibling
// instances. Caller holds s.mu; dims are already private.
func (s *Scenario) applyValidity(e Edit) error {
	di, err := s.dimIndex(e.Dim)
	if err != nil {
		return err
	}
	d := s.dims[di]
	var b *dimension.Binding
	for _, cand := range s.bindings {
		if cand.Varying == d {
			b = cand
			break
		}
	}
	if b == nil {
		return fmt.Errorf("scenario %s: dimension %q has no varying binding for validity edits", s.id, e.Dim)
	}
	inst, err := d.Lookup(e.Member)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.id, err)
	}
	lo, err := paramOrdinal(b.Param, e.From)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.id, err)
	}
	hi, err := paramOrdinal(b.Param, e.To)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.id, err)
	}
	if err := b.SetWindow(inst, lo, hi); err != nil {
		return fmt.Errorf("scenario %s: %w", s.id, err)
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.id, err)
	}
	return nil
}

// paramOrdinal resolves a parameter-dimension leaf reference to its
// ordinal.
func paramOrdinal(param *dimension.Dimension, ref string) (int, error) {
	id, err := param.Lookup(ref)
	if err != nil {
		return 0, err
	}
	m := param.Member(id)
	if m.LeafOrdinal < 0 {
		return 0, fmt.Errorf("dimension %s: %q is not a leaf", param.Name(), ref)
	}
	return m.LeafOrdinal, nil
}

// snapshot captures the scenario's current immutable read state.
func (s *Scenario) snapshot() (layers []*chunk.Layer, dims []*dimension.Dimension, bindings []*dimension.Binding, rev int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.layers, s.curDims(), s.curBindings(), s.revision
}

// View assembles the scenario's layered view cube: the base store
// under the layer chain, exposed with the scenario's dimensions and
// bindings, sharing the base's rules and derived (non-leaf) cells.
// Nothing is copied; the view is an immutable snapshot safe to query
// concurrently with later edits. The returned revision identifies the
// snapshot for cache keying.
func (s *Scenario) View() (*cube.Cube, int64, error) {
	layers, dims, bindings, rev := s.snapshot()
	chain := chunk.NewChain(s.base.Store(), layers)
	view := cube.NewWithStore(chain, dims...)
	for _, b := range bindings {
		if err := view.AddBinding(b); err != nil {
			return nil, 0, fmt.Errorf("scenario %s: %w", s.id, err)
		}
	}
	view.SetRules(s.base.Rules())
	s.base.DerivedCells(func(ids []dimension.MemberID, v float64) bool {
		view.SetValue(ids, v)
		return true
	})
	return view, rev, nil
}

// Materialize flattens the scenario into a standalone chunk-backed
// cube at the current (possibly widened) geometry — the commit path:
// base cells resolved through the layer chain, scenario dimensions,
// rebased bindings, shared rules, and the base's derived cells.
func (s *Scenario) Materialize() (*cube.Cube, error) {
	layers, dims, bindings, _ := s.snapshot()
	geom := func() *chunk.Geometry { s.mu.Lock(); defer s.mu.Unlock(); return s.geom }()
	chain := chunk.NewChain(s.base.Store(), layers)
	st := chunk.NewStore(geom)
	chain.NonNull(func(addr []int, v float64) bool {
		st.Set(addr, v)
		return true
	})
	out := cube.NewWithStore(st, dims...)
	for _, b := range bindings {
		if err := out.AddBinding(b); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.id, err)
		}
	}
	out.SetRules(s.base.Rules())
	s.base.DerivedCells(func(ids []dimension.MemberID, v float64) bool {
		out.SetValue(ids, v)
		return true
	})
	return out, nil
}
