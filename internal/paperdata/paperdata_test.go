package paperdata

import (
	"testing"

	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// TestPaperFig2 checks the reconstructed Fig. 2 slice (Location = NY,
// Measure = Salary) against every constraint the paper states in prose.
func TestPaperFig2(t *testing.T) {
	c := Warehouse()
	org, loc, tim, meas := c.Dim(0), c.Dim(1), c.Dim(2), c.Dim(3)
	val := func(orgRef string, month int) float64 {
		return c.Value([]dimension.MemberID{
			org.MustLookup(orgRef), loc.MustLookup("NY"), tim.Leaf(month).ID, meas.MustLookup("Salary"),
		})
	}

	// Joe's instances: exactly one valid per month, ⊥ elsewhere.
	if got := val("FTE/Joe", Jan); got != 10 {
		t.Errorf("(FTE/Joe, Jan) = %v, want 10", got)
	}
	for m := Feb; m <= Jun; m++ {
		if !cube.IsNull(val("FTE/Joe", m)) {
			t.Errorf("(FTE/Joe, %d) should be ⊥", m)
		}
	}
	if got := val("PTE/Joe", Feb); got != 10 {
		t.Errorf("(PTE/Joe, Feb) = %v, want 10", got)
	}
	if !cube.IsNull(val("PTE/Joe", Jan)) || !cube.IsNull(val("PTE/Joe", Mar)) {
		t.Error("(PTE/Joe, Jan/Mar) should be ⊥")
	}
	if got := val("Contractor/Joe", Mar); got != 30 {
		t.Errorf("(Contractor/Joe, Mar) = %v, want 30 (needed by the Fig. 4 narrative)", got)
	}
	if !cube.IsNull(val("Contractor/Joe", May)) {
		t.Error("(Contractor/Joe, May) should be ⊥ (vacation)")
	}

	// Lisa, Tom, Jane: 10 per month Jan..Jun.
	for _, who := range []string{"FTE/Lisa", "PTE/Tom", "Contractor/Jane"} {
		for m := Jan; m <= Jun; m++ {
			if got := val(who, m); got != 10 {
				t.Errorf("(%s, %d) = %v, want 10", who, m, got)
			}
		}
	}

	// Quarter rollups via the rule engine (all non-leaf cells derived).
	q1 := func(orgRef string) float64 {
		v, err := c.Rules().EvalCell(c, c, []dimension.MemberID{
			org.MustLookup(orgRef), loc.MustLookup("NY"), tim.MustLookup("Qtr1"), meas.MustLookup("Salary"),
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := q1("FTE/Lisa"); got != 30 {
		t.Errorf("Lisa Q1 = %v, want 30", got)
	}
	if got := q1("Contractor/Joe"); got != 30 {
		t.Errorf("Contractor/Joe Q1 = %v, want 30 (Mar only)", got)
	}
	// FTE group total for Q1: Joe(10, Jan) + Lisa(30).
	if got := q1("FTE"); got != 40 {
		t.Errorf("FTE Q1 = %v, want 40", got)
	}
}

func TestValidityInvariants(t *testing.T) {
	c := Warehouse()
	b := c.BindingFor("Organization")
	if b == nil {
		t.Fatal("missing Organization binding")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	org := c.Dim(0)
	// The paper: at any given time at most one instance of a member is
	// valid; in May no instance of Joe is valid.
	if got := b.InstanceAt("Joe", May); got != dimension.None {
		t.Errorf("InstanceAt(Joe, May) = %v, want None", org.Path(got))
	}
	for m, want := range map[int]string{Jan: "FTE/Joe", Feb: "PTE/Joe", Mar: "Contractor/Joe", Dec: "Contractor/Joe"} {
		if got := org.Path(b.InstanceAt("Joe", m)); got != want {
			t.Errorf("InstanceAt(Joe, %d) = %s, want %s", m, got, want)
		}
	}
}

func TestInactiveMembersHaveNoData(t *testing.T) {
	c := Warehouse()
	org, loc, tim, meas := c.Dim(0), c.Dim(1), c.Dim(2), c.Dim(3)
	sue := org.MustLookup("Sue")
	for m := Jan; m <= Dec; m++ {
		v := c.Value([]dimension.MemberID{sue, loc.MustLookup("NY"), tim.Leaf(m).ID, meas.MustLookup("Salary")})
		if !cube.IsNull(v) {
			t.Fatalf("Sue should be inactive, got %v at month %d", v, m)
		}
	}
}

func TestMonthOrdinal(t *testing.T) {
	if MonthOrdinal("Jan") != Jan || MonthOrdinal("Dec") != Dec {
		t.Fatal("MonthOrdinal mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown month should panic")
		}
	}()
	MonthOrdinal("Smarch")
}
