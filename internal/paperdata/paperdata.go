// Package paperdata builds the running example of the paper (Fig. 1/2):
// a workforce warehouse with Organization, Location, Time and Measures
// dimensions, in which employee Joe is reclassified FTE → PTE →
// Contractor over the year.
//
// The paper's Fig. 2 print is partially garbled in the available text, so
// the cell values here are reconstructed to satisfy every constraint the
// paper states in prose:
//
//   - VS(FTE/Joe) = {Jan}, VS(PTE/Joe) = {Feb}, and Joe is a Contractor
//     from March onwards except May (vacation), §2;
//   - VS(Lisa) = {Jan, …, Jun} (§2), and likewise for Tom and Jane;
//   - (Contractor/Joe, Mar, NY, Salary) = 30, because under forward
//     semantics with P = {Feb, Apr} the cell (PTE/Joe, Mar) inherits the
//     value 30 (§3.3 discussion of Fig. 4);
//   - Sue, Dave and the members of Fig. 1 not shown in Fig. 2 are
//     inactive (no data), §2.
//
// Golden tests across the repository assert against this reconstruction.
package paperdata

import (
	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// Month ordinals in the Time dimension, for readability.
const (
	Jan = iota
	Feb
	Mar
	Apr
	May
	Jun
	Jul
	Aug
	Sep
	Oct
	Nov
	Dec
)

// Organization builds the varying Organization dimension of Fig. 1. Joe
// has three instances: FTE/Joe, PTE/Joe and Contractor/Joe.
func Organization() *dimension.Dimension {
	d := dimension.New("Organization", false)
	d.MustAdd("", "FTE")
	d.MustAdd("FTE", "Joe")
	d.MustAdd("FTE", "Lisa")
	d.MustAdd("FTE", "Sue")
	d.MustAdd("", "PTE")
	d.MustAdd("PTE", "Tom")
	d.MustAdd("PTE", "Dave")
	d.MustAdd("PTE", "Joe")
	d.MustAdd("", "Contractor")
	d.MustAdd("Contractor", "Jane")
	d.MustAdd("Contractor", "Joe")
	return d
}

// Location builds the Location dimension of Fig. 1.
func Location() *dimension.Dimension {
	d := dimension.New("Location", false)
	d.MustAdd("", "East")
	d.MustAdd("East", "NY")
	d.MustAdd("East", "MA")
	d.MustAdd("East", "NH")
	d.MustAdd("", "West")
	d.MustAdd("West", "CA")
	d.MustAdd("West", "OR")
	d.MustAdd("West", "WA")
	d.MustAdd("", "South")
	d.MustAdd("South", "TX")
	d.MustAdd("South", "FL")
	return d
}

// Time builds the ordered Time dimension: four quarters over Jan..Dec.
func Time() *dimension.Dimension {
	d := dimension.New("Time", true)
	quarters := []struct {
		q      string
		months []string
	}{
		{"Qtr1", []string{"Jan", "Feb", "Mar"}},
		{"Qtr2", []string{"Apr", "May", "Jun"}},
		{"Qtr3", []string{"Jul", "Aug", "Sep"}},
		{"Qtr4", []string{"Oct", "Nov", "Dec"}},
	}
	for _, q := range quarters {
		d.MustAdd("", q.q)
		for _, m := range q.months {
			d.MustAdd(q.q, m)
		}
	}
	return d
}

// Measures builds the Measures dimension of Fig. 1.
func Measures() *dimension.Dimension {
	d := dimension.New("Measures", false)
	d.MarkMeasure()
	d.MustAdd("", "Compensation")
	d.MustAdd("Compensation", "Salary")
	d.MustAdd("Compensation", "Benefits")
	d.MustAdd("", "Productivity")
	d.MustAdd("Productivity", "Products")
	d.MustAdd("Productivity", "Services")
	return d
}

// Warehouse builds the full example cube with the Organization/Time
// binding and the reconstructed Fig. 2 data. The cube's dimensions are
// ordered (Organization, Location, Time, Measures).
func Warehouse() *cube.Cube {
	org, loc, tim, meas := Organization(), Location(), Time(), Measures()
	c := cube.New(org, loc, tim, meas)

	b := dimension.NewBinding(org, tim)
	b.SetVS(org.MustLookup("FTE/Joe"), Jan)
	b.SetVS(org.MustLookup("PTE/Joe"), Feb)
	b.SetVS(org.MustLookup("Contractor/Joe"), Mar, Apr, Jun, Jul, Aug, Sep, Oct, Nov, Dec)
	if err := c.AddBinding(b); err != nil {
		panic(err)
	}

	set := func(orgRef, locRef string, month int, measRef string, v float64) {
		ids := []dimension.MemberID{
			org.MustLookup(orgRef),
			loc.MustLookup(locRef),
			tim.Leaf(month).ID,
			meas.MustLookup(measRef),
		}
		c.SetValue(ids, v)
	}

	// Salary in NY, Jan..Jun (the Fig. 2 slice). Joe's salary as a
	// Contractor in March is 30 (see package comment); everything else
	// is a flat 10 per active month.
	type row struct {
		inst   string
		salary map[int]float64
	}
	rows := []row{
		{"FTE/Joe", map[int]float64{Jan: 10}},
		{"FTE/Lisa", map[int]float64{Jan: 10, Feb: 10, Mar: 10, Apr: 10, May: 10, Jun: 10}},
		{"PTE/Tom", map[int]float64{Jan: 10, Feb: 10, Mar: 10, Apr: 10, May: 10, Jun: 10}},
		{"PTE/Joe", map[int]float64{Feb: 10}},
		{"Contractor/Jane", map[int]float64{Jan: 10, Feb: 10, Mar: 10, Apr: 10, May: 10, Jun: 10}},
		{"Contractor/Joe", map[int]float64{Mar: 30, Apr: 10, Jun: 10}},
	}
	for _, r := range rows {
		for month, v := range r.salary {
			set(r.inst, "NY", month, "Salary", v)
			// Benefits track salary at 20%.
			set(r.inst, "NY", month, "Benefits", v*0.2)
		}
	}
	// Lisa also performs some work in MA (scenario S2 of the paper's
	// introduction considers reclassifying that work).
	for _, month := range []int{Jan, Feb, Mar} {
		set("FTE/Lisa", "MA", month, "Salary", 5)
	}
	// A little productivity data so the Productivity rollup is non-null.
	set("FTE/Lisa", "NY", Jan, "Products", 3)
	set("PTE/Tom", "NY", Jan, "Services", 2)
	return c
}

// ChunkedWarehouse builds the same example cube backed by a chunked
// array store (the physical organization the engine operates on).
// chunkDims gives the chunk edge per dimension (Organization, Location,
// Time, Measures); nil selects a small default that splits every
// dimension into several chunks.
func ChunkedWarehouse(chunkDims []int) *cube.Cube {
	mem := Warehouse()
	if chunkDims == nil {
		chunkDims = []int{3, 2, 4, 2}
	}
	extents := make([]int, mem.NumDims())
	for i := 0; i < mem.NumDims(); i++ {
		extents[i] = mem.Dim(i).NumLeaves()
	}
	st := chunk.NewStore(chunk.MustGeometry(extents, chunkDims))
	mem.Store().NonNull(func(addr []int, v float64) bool {
		st.Set(addr, v)
		return true
	})
	out := cube.NewWithStore(st, mem.Dims()...)
	for _, b := range mem.Bindings() {
		if err := out.AddBinding(b); err != nil {
			panic(err)
		}
	}
	out.SetRules(mem.Rules())
	return out
}

// MonthOrdinal maps a month name to its Time leaf ordinal. It panics on
// unknown names; fixtures are static.
func MonthOrdinal(name string) int {
	names := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	for i, n := range names {
		if n == name {
			return i
		}
	}
	panic("paperdata: unknown month " + name)
}
