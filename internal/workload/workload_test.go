package workload

import (
	"testing"

	"whatifolap/internal/algebra"
	"whatifolap/internal/core"
	"whatifolap/internal/cube"
	"whatifolap/internal/perspective"
)

func TestWorkforceTinyShape(t *testing.T) {
	w, err := NewWorkforce(ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.Config
	dept := w.Cube.DimByName(DimDepartment)
	if dept == nil {
		t.Fatal("missing Department dimension")
	}
	if len(w.Changing) != cfg.ChangingEmployees {
		t.Fatalf("changing = %d, want %d", len(w.Changing), cfg.ChangingEmployees)
	}
	// Changing employees have ≥ 2 instances; others exactly 1.
	for _, name := range w.Changing {
		if n := len(dept.Instances(name)); n < 2 {
			t.Fatalf("changing employee %s has %d instances", name, n)
		}
	}
	if got := len(dept.VaryingMembers()); got != cfg.ChangingEmployees {
		t.Fatalf("varying members = %d, want %d", got, cfg.ChangingEmployees)
	}
	// Binding invariant holds.
	b := w.Cube.BindingFor(DimDepartment)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Input cell count: employees × months × accounts × scenarios.
	want := cfg.Employees * cfg.Months * cfg.Accounts * cfg.Scenarios
	if got := w.Cube.NumCells(); got != want {
		t.Fatalf("cells = %d, want %d", got, want)
	}
}

func TestWorkforceEveryMonthCovered(t *testing.T) {
	w, err := NewWorkforce(ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	b := w.Cube.BindingFor(DimDepartment)
	for _, name := range w.Changing {
		for m := 0; m < w.Config.Months; m++ {
			if b.InstanceAt(name, m) < 0 {
				t.Fatalf("employee %s has no valid instance at month %d", name, m)
			}
		}
	}
}

func TestWorkforceDeterministic(t *testing.T) {
	a, err := NewWorkforce(ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkforce(ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cube.NumCells() != b.Cube.NumCells() {
		t.Fatal("same seed should give same cube")
	}
	sum := func(c *cube.Cube) float64 {
		s := 0.0
		c.Store().NonNull(func(addr []int, v float64) bool { s += v; return true })
		return s
	}
	if sum(a.Cube) != sum(b.Cube) {
		t.Fatal("same seed should give same values")
	}
}

func TestWorkforceValidation(t *testing.T) {
	bad := ConfigTiny()
	bad.MaxMoves = 12 // does not fit in 12 months
	if _, err := NewWorkforce(bad); err == nil {
		t.Fatal("invalid config should fail")
	}
	bad = ConfigTiny()
	bad.ChangingEmployees = bad.Employees + 1
	if _, err := NewWorkforce(bad); err == nil {
		t.Fatal("too many changing employees should fail")
	}
	bad = ConfigTiny()
	bad.Accounts = 0
	if _, err := NewWorkforce(bad); err == nil {
		t.Fatal("zero accounts should fail")
	}
}

func TestChangingWithMoves(t *testing.T) {
	w, err := NewWorkforce(ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for n := w.Config.MinMoves; n <= w.Config.MaxMoves; n++ {
		total += len(w.ChangingWithMoves(n, false))
	}
	if total != len(w.Changing) {
		t.Fatalf("moves histogram covers %d of %d", total, len(w.Changing))
	}
	if got := len(w.ChangingWithMoves(w.Config.MinMoves, true)); got != len(w.Changing) {
		t.Fatalf("atLeast(min) = %d, want all %d", got, len(w.Changing))
	}
}

// TestWorkforceEngineQuery runs a perspective query end to end on the
// generated cube and sanity-checks conservation: a forward query with a
// single January perspective relocates every scoped cell (every month
// is covered by some instance).
func TestWorkforceEngineQuery(t *testing.T) {
	w, err := NewWorkforce(ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(w.Cube, DimDepartment)
	if err != nil {
		t.Fatal(err)
	}
	scope := w.Changing[:4]
	v, err := e.ExecPerspective(core.PerspectiveQuery{
		Members:      scope,
		Perspectives: []int{0},
		Sem:          perspective.Forward,
		Mode:         perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.Config
	wantCells := len(scope) * cfg.Months * cfg.Accounts * cfg.Scenarios
	if v.Stats.CellsRelocated != wantCells {
		t.Fatalf("relocated %d cells, want %d", v.Stats.CellsRelocated, wantCells)
	}
	// Every scoped employee's yearly total is preserved under forward
	// with P = {Jan} (only the rows move, not the values).
	dept := w.Cube.DimByName(DimDepartment)
	b := w.Cube.BindingFor(DimDepartment)
	for _, name := range scope {
		inst0 := b.InstanceAt(name, 0)
		var wantSum float64
		w.Cube.Store().NonNull(func(addr []int, val float64) bool {
			for _, inst := range dept.Instances(name) {
				if dept.Member(inst).LeafOrdinal == addr[0] {
					wantSum += val
				}
			}
			return true
		})
		var gotSum float64
		v.Result().Store().NonNull(func(addr []int, val float64) bool {
			if addr[0] == dept.Member(inst0).LeafOrdinal {
				gotSum += val
			}
			return true
		})
		if absDiff(gotSum, wantSum) > 1e-6 {
			t.Fatalf("%s: forward total %v != input total %v", name, gotSum, wantSum)
		}
	}
}

func TestRetailByTime(t *testing.T) {
	rt, err := NewRetailByTime(ConfigRetail())
	if err != nil {
		t.Fatal(err)
	}
	prod := rt.Cube.DimByName("Product")
	if len(rt.Moving) == 0 {
		t.Fatal("no moving products")
	}
	for _, name := range rt.Moving {
		if len(prod.Instances(name)) != 2 {
			t.Fatalf("moving product %s has %d instances, want 2", name, len(prod.Instances(name)))
		}
	}
	if err := rt.Cube.BindingFor("Product").Validate(); err != nil {
		t.Fatal(err)
	}
	// The margin rules from the paper are installed and scoped: East
	// margins use the 0.93 factor.
	ids := []string{"Product", "Time", "East", "Margin"}
	_ = ids
	m := rt.Cube.DimByName("Measures")
	if m == nil || len(rt.Cube.Rules().Rules()) != 3 {
		t.Fatalf("rules = %d, want 3", len(rt.Cube.Rules().Rules()))
	}
}

func TestRetailByTimePerspectives(t *testing.T) {
	rt, err := NewRetailByTime(ConfigRetail())
	if err != nil {
		t.Fatal(err)
	}
	out, err := algebra.ApplyPerspectives(rt.Cube, "Product", perspective.Forward, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Under P={month 0} forward, every moving product's original
	// instance covers the whole year.
	prod := out.DimByName("Product")
	b := out.BindingFor("Product")
	for _, name := range rt.Moving {
		inst0 := b.Varying.Instances(name)[0]
		_ = prod
		if got := b.ValiditySet(inst0).Len(); got != rt.Config.Months {
			t.Fatalf("%s: forward VS covers %d months, want %d", name, got, rt.Config.Months)
		}
	}
}

func TestRetailByMarketStaticOnly(t *testing.T) {
	rt, err := NewRetailByMarket(ConfigRetail())
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Cube.BindingFor("Product").Validate(); err != nil {
		t.Fatal(err)
	}
	// Dynamic semantics must be rejected over the unordered Market.
	if _, err := algebra.ApplyPerspectives(rt.Cube, "Product", perspective.Forward, []int{0}); err == nil {
		t.Fatal("forward over unordered Market should fail")
	}
	// Static works: keep only the classification of market E1.
	out, err := algebra.ApplyPerspectives(rt.Cube, "Product", perspective.Static, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	b := out.BindingFor("Product")
	for _, name := range rt.Moving {
		insts := b.Varying.Instances(name)
		kept := 0
		for _, inst := range insts {
			if !b.ValiditySet(inst).IsEmpty() && b.ValiditySet(inst).Contains(0) {
				kept++
			}
		}
		if kept != 1 {
			t.Fatalf("%s: %d instances valid at the static market, want 1", name, kept)
		}
	}
}

func TestRetailValidation(t *testing.T) {
	bad := ConfigRetail()
	bad.Families = 1
	if _, err := NewRetailByTime(bad); err == nil {
		t.Fatal("single family should fail")
	}
	if _, err := NewRetailByMarket(bad); err == nil {
		t.Fatal("single family should fail (market variant)")
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
