package workload

import (
	"bufio"
	"io"
	"os"

	"whatifolap/internal/cube"
)

// LoadAuto reads a cube dump in either serialization format, sniffing
// the binary magic and falling back to the text format. chunkDims is
// passed through to Load for text dumps (nil = plain in-memory store;
// empty = chunked with default edges); binary dumps carry their own
// geometry.
func LoadAuto(r io.Reader, chunkDims []int) (*cube.Cube, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(binMagic)); err == nil && string(magic) == binMagic {
		return LoadBinary(br)
	}
	return Load(br, chunkDims)
}

// LoadFile opens and loads a cube dump from disk in either format —
// the serving layer's cube-catalog loader and the CLI's -load both use
// it. Chunked storage is requested (chunkDims as in LoadAuto) so the
// result can drive the perspective-cube engine.
func LoadFile(path string, chunkDims []int) (*cube.Cube, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadAuto(f, chunkDims)
}
