package workload

import (
	"bytes"
	"strings"
	"testing"

	"whatifolap/internal/chunk"
	"whatifolap/internal/paperdata"
)

func TestBinaryRoundTrip(t *testing.T) {
	orig := paperdata.ChunkedWarehouse(nil)
	var buf bytes.Buffer
	if err := SaveBinary(orig, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDims() != orig.NumDims() || loaded.NumCells() != orig.NumCells() {
		t.Fatalf("shape: %d dims / %d cells, want %d / %d",
			loaded.NumDims(), loaded.NumCells(), orig.NumDims(), orig.NumCells())
	}
	orig.Store().NonNull(func(addr []int, v float64) bool {
		if got := loaded.Leaf(addr); got != v {
			t.Fatalf("cell %v = %v, want %v", addr, got, v)
		}
		return true
	})
	lb := loaded.BindingFor("Organization")
	ob := orig.BindingFor("Organization")
	if lb == nil {
		t.Fatal("binding lost")
	}
	for _, id := range orig.Dim(0).Leaves() {
		p := orig.Dim(0).Path(id)
		lid := loaded.Dim(0).MustLookup(p)
		if !lb.ValiditySet(lid).Equal(ob.ValiditySet(id)) {
			t.Fatalf("VS of %s differs", p)
		}
	}
	if err := lb.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ordered/measure flags survive.
	if !loaded.Dim(2).Ordered() || !loaded.Dim(3).Measure() {
		t.Fatal("dimension flags lost")
	}
}

func TestBinaryWorkforceRoundTrip(t *testing.T) {
	w, err := NewWorkforce(ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveBinary(w.Cube, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumCells() != w.Cube.NumCells() {
		t.Fatalf("cells = %d, want %d", loaded.NumCells(), w.Cube.NumCells())
	}
}

func TestBinaryRejectsMemStoreCube(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveBinary(paperdata.Warehouse(), &buf); err == nil {
		t.Fatal("MemStore cube should be rejected")
	}
}

func TestBinaryLoadErrors(t *testing.T) {
	good := new(bytes.Buffer)
	if err := SaveBinary(paperdata.ChunkedWarehouse(nil), good); err != nil {
		t.Fatal(err)
	}
	data := good.Bytes()

	// Bad magic.
	if _, err := LoadBinary(strings.NewReader("NOTMAGIC" + string(data[8:]))); err == nil {
		t.Fatal("bad magic should fail")
	}
	// Truncations at every prefix length must error, not panic or hang.
	for _, n := range []int{0, 4, 8, 9, 12, 40, 100, len(data) / 2, len(data) - 1} {
		if n > len(data) {
			continue
		}
		if _, err := LoadBinary(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation at %d bytes should fail", n)
		}
	}
	// Bit-flip fuzzing over the header region: must never panic.
	for i := 8; i < 60 && i < len(data); i++ {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("corruption at byte %d caused panic: %v", i, r)
				}
			}()
			_, _ = LoadBinary(bytes.NewReader(corrupted)) // error or success are both fine
		}()
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	w, err := NewWorkforce(ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	var binBuf bytes.Buffer
	if err := SaveBinary(w.Cube, &binBuf); err != nil {
		t.Fatal(err)
	}
	var txtBuf strings.Builder
	if err := Save(w.Cube, &txtBuf); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len() >= txtBuf.Len() {
		t.Fatalf("binary (%d B) should be smaller than text (%d B)", binBuf.Len(), txtBuf.Len())
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	orig := paperdata.ChunkedWarehouse(nil)
	var buf bytes.Buffer
	if err := SaveSchema(orig, &buf); err != nil {
		t.Fatal(err)
	}
	// The schema blob must be far smaller than the full dump: no cells.
	var full bytes.Buffer
	if err := SaveBinary(orig, &full); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= full.Len() {
		t.Fatalf("schema blob %d B not smaller than full dump %d B", buf.Len(), full.Len())
	}
	loaded, err := LoadSchema(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDims() != orig.NumDims() {
		t.Fatalf("dims = %d, want %d", loaded.NumDims(), orig.NumDims())
	}
	if loaded.NumCells() != 0 {
		t.Fatalf("schema-only cube has %d cells, want 0", loaded.NumCells())
	}
	lst, ok := loaded.Store().(*chunk.Store)
	if !ok {
		t.Fatalf("schema cube store is %T", loaded.Store())
	}
	ost := orig.Store().(*chunk.Store)
	if lst.Geometry().ChunkCap() != ost.Geometry().ChunkCap() {
		t.Fatal("geometry lost in schema round trip")
	}
	if loaded.BindingFor("Organization") == nil {
		t.Fatal("binding lost in schema round trip")
	}
}
