package workload

import (
	"fmt"
	"math/rand"

	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// RetailConfig parameterizes the product/market generator used by the
// paper's product-bundling examples (§1, §4.2): product families whose
// membership changes over time, or differs across markets.
type RetailConfig struct {
	// Families is the number of product families (the paper's 100, 200,
	// 300 groups).
	Families int
	// ProductsPerFamily is the initial family size.
	ProductsPerFamily int
	// Months is the Time extent.
	Months int
	// Markets per region (two regions, East and West).
	MarketsPerRegion int
	// MovingProducts are re-bundled into another family mid-year
	// (ordered-parameter changes). Ignored by NewRetailByMarket.
	MovingProducts int
	Seed           int64
}

// ConfigRetail returns the default retail configuration.
func ConfigRetail() RetailConfig {
	return RetailConfig{
		Families: 3, ProductsPerFamily: 4, Months: 12,
		MarketsPerRegion: 3, MovingProducts: 3, Seed: 7,
	}
}

// Validate checks the configuration.
func (c RetailConfig) Validate() error {
	if c.Families < 2 || c.ProductsPerFamily < 1 || c.Months < 2 || c.MarketsPerRegion < 1 {
		return fmt.Errorf("workload: bad retail config %+v", c)
	}
	if c.MovingProducts > c.Families*c.ProductsPerFamily {
		return fmt.Errorf("workload: %d moving products exceed catalog", c.MovingProducts)
	}
	return nil
}

// Retail is a generated product/market dataset.
type Retail struct {
	Cube   *cube.Cube
	Config RetailConfig
	// Moving lists product names that change family.
	Moving []string
}

// NewRetailByTime builds a cube where the Product dimension varies over
// the ordered Time dimension: MovingProducts are re-bundled into the
// next family at a mid-year month, like the paper's §4.2 example
// R = {(1002, 100, 200, Apr), (2001, 200, 300, Apr), (3001, 300, 100, Apr)}.
func NewRetailByTime(cfg RetailConfig) (*Retail, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	product := dimension.New("Product", false)
	famNames := make([]string, cfg.Families)
	var products []string
	prodFam := map[string]int{}
	for f := 0; f < cfg.Families; f++ {
		famNames[f] = fmt.Sprintf("%d", (f+1)*100)
		product.MustAdd("", famNames[f])
		for p := 0; p < cfg.ProductsPerFamily; p++ {
			name := fmt.Sprintf("%d", (f+1)*1000+p+1)
			product.MustAdd(famNames[f], name)
			products = append(products, name)
			prodFam[name] = f
		}
	}

	tim := dimension.New("Time", true)
	for m := 0; m < cfg.Months; m++ {
		tim.MustAdd("", monthName(m))
	}

	market := dimension.New("Market", false)
	market.MustAdd("", "East")
	market.MustAdd("", "West")
	for i := 0; i < cfg.MarketsPerRegion; i++ {
		market.MustAdd("East", fmt.Sprintf("E%d", i+1))
		market.MustAdd("West", fmt.Sprintf("W%d", i+1))
	}

	meas := dimension.New("Measures", false)
	meas.MarkMeasure()
	meas.MustAdd("", "Sales")
	meas.MustAdd("", "COGS")
	meas.MustAdd("", "Margin")
	meas.MustAdd("", "Margin%")

	c := cube.New(product, tim, market, meas)
	// The paper's §2 rules: a general margin rule, a scoped East
	// variant, and a ratio.
	c.Rules().MustAddFormula("Measures", "Margin", "Sales - COGS")
	c.Rules().MustAddFormula("Measures", "Margin", "0.93*Sales - COGS",
		cube.ScopeCond{Dim: "Market", Member: "East"})
	c.Rules().MustAddFormula("Measures", "Margin%", "[Margin]/[COGS] * 100")

	b := dimension.NewBinding(product, tim)
	moveMonth := cfg.Months / 3
	var moving []string
	for i := 0; i < cfg.MovingProducts; i++ {
		name := products[i*cfg.ProductsPerFamily%len(products)]
		if containsString(moving, name) {
			continue
		}
		moving = append(moving, name)
		from := prodFam[name]
		to := (from + 1) % cfg.Families
		newID := product.MustAdd(famNames[to], name)
		oldID := product.MustLookup(famNames[from] + "/" + name)
		var before, after []int
		for m := 0; m < cfg.Months; m++ {
			if m < moveMonth {
				before = append(before, m)
			} else {
				after = append(after, m)
			}
		}
		b.SetVS(oldID, before...)
		b.SetVS(newID, after...)
	}
	if err := c.AddBinding(b); err != nil {
		return nil, err
	}

	// Sales/COGS for every (valid product instance, month, market).
	for _, name := range products {
		for _, inst := range product.Instances(name) {
			vs := b.ValiditySet(inst)
			for m := 0; m < cfg.Months; m++ {
				if !vs.Contains(m) {
					continue
				}
				for _, mk := range market.Leaves() {
					sales := float64(500 + r.Intn(1500))
					ids := []dimension.MemberID{inst, tim.Leaf(m).ID, mk, meas.MustLookup("Sales")}
					c.SetValue(ids, sales)
					ids[3] = meas.MustLookup("COGS")
					c.SetValue(ids, sales*(0.5+0.3*r.Float64()))
				}
			}
		}
	}
	return &Retail{Cube: c, Config: cfg, Moving: moving}, nil
}

// NewRetailByMarket builds a cube where the Product dimension varies
// over the unordered Market dimension: a product belongs to one family
// in eastern markets and another in western markets (the paper's §3.1
// remark that structural changes "can vary by location"). Only static
// semantics applies to unordered parameters.
func NewRetailByMarket(cfg RetailConfig) (*Retail, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	product := dimension.New("Product", false)
	famNames := make([]string, cfg.Families)
	var products []string
	for f := 0; f < cfg.Families; f++ {
		famNames[f] = fmt.Sprintf("%d", (f+1)*100)
		product.MustAdd("", famNames[f])
		for p := 0; p < cfg.ProductsPerFamily; p++ {
			name := fmt.Sprintf("%d", (f+1)*1000+p+1)
			product.MustAdd(famNames[f], name)
			products = append(products, name)
		}
	}
	market := dimension.New("Market", false) // unordered parameter
	market.MustAdd("", "East")
	market.MustAdd("", "West")
	for i := 0; i < cfg.MarketsPerRegion; i++ {
		market.MustAdd("East", fmt.Sprintf("E%d", i+1))
		market.MustAdd("West", fmt.Sprintf("W%d", i+1))
	}
	meas := dimension.New("Measures", false)
	meas.MarkMeasure()
	meas.MustAdd("", "Sales")

	c := cube.New(product, market, meas)
	b := dimension.NewBinding(product, market)

	// The first product of each family is bundled differently out west:
	// it moves one family over for the West markets.
	var east, west []int
	for o := 0; o < market.NumLeaves(); o++ {
		if market.Leaf(o).Name[0] == 'E' {
			east = append(east, o)
		} else {
			west = append(west, o)
		}
	}
	var moving []string
	for f := 0; f < cfg.Families; f++ {
		name := fmt.Sprintf("%d", (f+1)*1000+1)
		moving = append(moving, name)
		to := (f + 1) % cfg.Families
		newID := product.MustAdd(famNames[to], name)
		oldID := product.MustLookup(famNames[f] + "/" + name)
		b.SetVS(oldID, east...)
		b.SetVS(newID, west...)
	}
	if err := c.AddBinding(b); err != nil {
		return nil, err
	}
	for _, name := range products {
		for _, inst := range product.Instances(name) {
			vs := b.ValiditySet(inst)
			for o := 0; o < market.NumLeaves(); o++ {
				if !vs.Contains(o) {
					continue
				}
				ids := []dimension.MemberID{inst, market.Leaf(o).ID, meas.MustLookup("Sales")}
				c.SetValue(ids, float64(100+r.Intn(900)))
			}
		}
	}
	return &Retail{Cube: c, Config: cfg, Moving: moving}, nil
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
