package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// The text dump format is line-oriented CSV with a leading record tag:
//
//	dimension,<name>,<ordered|unordered>[,measure]
//	member,<dim>,<parentPath>,<name>
//	binding,<varyingDim>,<paramDim>
//	vs,<varyingDim>,<instancePath>,<ord1;ord2;…>
//	cell,<path1>,…,<pathN>,<value>
//
// Member paths use '/' separators; the empty path denotes the root.
// Records must appear in the order above (cells last). Lines starting
// with '#' are comments.

// Save writes a cube in the text dump format.
func Save(c *cube.Cube, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < c.NumDims(); i++ {
		d := c.Dim(i)
		ord := "unordered"
		if d.Ordered() {
			ord = "ordered"
		}
		if d.Measure() {
			fmt.Fprintf(bw, "dimension,%s,%s,measure\n", d.Name(), ord)
		} else {
			fmt.Fprintf(bw, "dimension,%s,%s\n", d.Name(), ord)
		}
		// Emit members in ID order, which is a valid topological order
		// (parents are created before children).
		for id := dimension.MemberID(1); int(id) < d.NumMembers(); id++ {
			m := d.Member(id)
			parent := ""
			if m.Parent != dimension.None {
				parent = d.Path(m.Parent)
			}
			fmt.Fprintf(bw, "member,%s,%s,%s\n", d.Name(), parent, m.Name)
		}
	}
	for _, b := range c.Bindings() {
		fmt.Fprintf(bw, "binding,%s,%s\n", b.Varying.Name(), b.Param.Name())
		for _, id := range b.Varying.Leaves() {
			vs, ok := b.VS[id]
			if !ok {
				continue
			}
			ords := make([]string, 0, vs.Len())
			vs.ForEach(func(i int) { ords = append(ords, strconv.Itoa(i)) })
			fmt.Fprintf(bw, "vs,%s,%s,%s\n", b.Varying.Name(), b.Varying.Path(id), strings.Join(ords, ";"))
		}
	}
	var saveErr error
	c.Store().NonNull(func(addr []int, v float64) bool {
		parts := make([]string, 0, c.NumDims()+2)
		parts = append(parts, "cell")
		for i, o := range addr {
			parts = append(parts, c.Dim(i).Path(c.Dim(i).Leaf(o).ID))
		}
		parts = append(parts, strconv.FormatFloat(v, 'g', -1, 64))
		if _, err := fmt.Fprintln(bw, strings.Join(parts, ",")); err != nil {
			saveErr = err
			return false
		}
		return true
	})
	if saveErr != nil {
		return saveErr
	}
	return bw.Flush()
}

// Load reads a cube from the text dump format. When chunkDims is
// non-nil the cube is backed by chunked storage with the given chunk
// edges (one per dimension, zero entries defaulted).
func Load(r io.Reader, chunkDims []int) (*cube.Cube, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var dims []*dimension.Dimension
	byName := map[string]*dimension.Dimension{}
	var bindings []*dimension.Binding
	bindByVarying := map[string]*dimension.Binding{}
	type cellRec struct {
		paths []string
		v     float64
	}
	var cells []cellRec
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		switch f[0] {
		case "dimension":
			if len(f) < 3 {
				return nil, fmt.Errorf("workload: line %d: bad dimension record", lineNo)
			}
			d := dimension.New(f[1], f[2] == "ordered")
			if len(f) > 3 && f[3] == "measure" {
				d.MarkMeasure()
			}
			if _, dup := byName[f[1]]; dup {
				return nil, fmt.Errorf("workload: line %d: duplicate dimension %q", lineNo, f[1])
			}
			dims = append(dims, d)
			byName[f[1]] = d
		case "member":
			if len(f) != 4 {
				return nil, fmt.Errorf("workload: line %d: bad member record", lineNo)
			}
			d := byName[f[1]]
			if d == nil {
				return nil, fmt.Errorf("workload: line %d: unknown dimension %q", lineNo, f[1])
			}
			if _, err := d.Add(f[2], f[3]); err != nil {
				return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
			}
		case "binding":
			if len(f) != 3 {
				return nil, fmt.Errorf("workload: line %d: bad binding record", lineNo)
			}
			v, p := byName[f[1]], byName[f[2]]
			if v == nil || p == nil {
				return nil, fmt.Errorf("workload: line %d: binding references unknown dimension", lineNo)
			}
			b := dimension.NewBinding(v, p)
			bindings = append(bindings, b)
			bindByVarying[f[1]] = b
		case "vs":
			if len(f) != 4 {
				return nil, fmt.Errorf("workload: line %d: bad vs record", lineNo)
			}
			b := bindByVarying[f[1]]
			if b == nil {
				return nil, fmt.Errorf("workload: line %d: vs before binding for %q", lineNo, f[1])
			}
			id, err := b.Varying.Lookup(f[2])
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
			}
			var ords []int
			if f[3] != "" {
				for _, s := range strings.Split(f[3], ";") {
					o, err := strconv.Atoi(s)
					if err != nil {
						return nil, fmt.Errorf("workload: line %d: bad ordinal %q", lineNo, s)
					}
					ords = append(ords, o)
				}
			}
			b.SetVS(id, ords...)
		case "cell":
			if len(f) < 3 {
				return nil, fmt.Errorf("workload: line %d: bad cell record", lineNo)
			}
			v, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad value %q", lineNo, f[len(f)-1])
			}
			cells = append(cells, cellRec{paths: f[1 : len(f)-1], v: v})
		default:
			return nil, fmt.Errorf("workload: line %d: unknown record %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("workload: dump has no dimensions")
	}

	var c *cube.Cube
	if chunkDims != nil {
		extents := make([]int, len(dims))
		for i, d := range dims {
			extents[i] = d.NumLeaves()
		}
		cd := defaultChunkDims(extents, chunkDims)
		g, err := chunk.NewGeometry(extents, cd)
		if err != nil {
			return nil, err
		}
		c = cube.NewWithStore(chunk.NewStore(g), dims...)
	} else {
		c = cube.New(dims...)
	}
	for _, b := range bindings {
		if err := c.AddBinding(b); err != nil {
			return nil, err
		}
	}
	ids := make([]dimension.MemberID, len(dims))
	for _, rec := range cells {
		if len(rec.paths) != len(dims) {
			return nil, fmt.Errorf("workload: cell arity %d, schema arity %d", len(rec.paths), len(dims))
		}
		for i, p := range rec.paths {
			id, err := dims[i].Lookup(p)
			if err != nil {
				return nil, fmt.Errorf("workload: cell path: %w", err)
			}
			ids[i] = id
		}
		c.SetValue(ids, rec.v)
	}
	return c, nil
}
