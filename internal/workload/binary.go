package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// Binary cube format. The text dump (Save/Load) is human-auditable but
// slow at benchmark scale; the binary format stores the same content —
// dimensions, bindings, validity sets, and cells (chunk-wise, sparse) —
// compactly. Rules are not serialized by either format; reattach them
// after loading.
//
// Layout (little endian):
//
//	magic "WOLAPBIN" | u16 version
//	u16 ndims
//	  per dim: str name | u8 flags (1=ordered, 2=measure) |
//	           u32 nMembers | per non-root member: i32 parent | str name
//	u16 nbindings
//	  per binding: u16 varyingDim | u16 paramDim | u32 nVS |
//	               per VS: i32 member | u32 nOrds | u32 ords…
//	geometry: u16 ndims | u32 extents… | u32 chunkDims…
//	u32 nchunks | per chunk: u32 id | u32 nCells | per cell: u32 off | f64 v
const (
	binMagic   = "WOLAPBIN"
	binVersion = 1
)

// SaveBinary writes a chunk-backed cube in the binary format.
func SaveBinary(c *cube.Cube, w io.Writer) error { return saveBinary(c, w, true) }

// SaveSchema writes only the cube's schema — dimensions, bindings,
// validity sets, and chunk geometry — as a binary stream with zero
// chunks. The segment store embeds this blob in each segment file's
// meta region: the schema travels with the cells, so a data directory
// restores cubes without re-ingest. LoadSchema (or LoadBinary) reads
// it back into a cube with an empty chunk store.
func SaveSchema(c *cube.Cube, w io.Writer) error { return saveBinary(c, w, false) }

func saveBinary(c *cube.Cube, w io.Writer, withChunks bool) error {
	st, ok := c.Store().(*chunk.Store)
	if !ok {
		return fmt.Errorf("workload: binary format requires a chunk-backed cube, got %T", c.Store())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	putU16 := func(v int) { var b [2]byte; le.PutUint16(b[:], uint16(v)); bw.Write(b[:]) }
	putU32 := func(v int) { var b [4]byte; le.PutUint32(b[:], uint32(v)); bw.Write(b[:]) }
	putI32 := func(v int32) { var b [4]byte; le.PutUint32(b[:], uint32(v)); bw.Write(b[:]) }
	putF64 := func(v float64) { var b [8]byte; le.PutUint64(b[:], math.Float64bits(v)); bw.Write(b[:]) }
	putStr := func(s string) {
		if len(s) > 65535 {
			s = s[:65535]
		}
		putU16(len(s))
		bw.WriteString(s)
	}

	putU16(binVersion)
	putU16(c.NumDims())
	for i := 0; i < c.NumDims(); i++ {
		d := c.Dim(i)
		putStr(d.Name())
		flags := 0
		if d.Ordered() {
			flags |= 1
		}
		if d.Measure() {
			flags |= 2
		}
		bw.WriteByte(byte(flags))
		putU32(d.NumMembers())
		for id := dimension.MemberID(1); int(id) < d.NumMembers(); id++ {
			m := d.Member(id)
			putI32(int32(m.Parent))
			putStr(m.Name)
		}
	}
	putU16(len(c.Bindings()))
	for _, b := range c.Bindings() {
		putU16(c.DimIndex(b.Varying.Name()))
		putU16(c.DimIndex(b.Param.Name()))
		putU32(len(b.VS))
		for _, id := range b.Varying.Leaves() {
			vs, ok := b.VS[id]
			if !ok {
				continue
			}
			putI32(int32(id))
			putU32(vs.Len())
			vs.ForEach(func(o int) { putU32(o) })
		}
	}
	g := st.Geometry()
	putU16(g.NumDims())
	for _, e := range g.Extents {
		putU32(e)
	}
	for _, cd := range g.ChunkDims {
		putU32(cd)
	}
	if !withChunks {
		putU32(0)
		return bw.Flush()
	}
	ids := st.ChunkIDs()
	putU32(len(ids))
	for _, id := range ids {
		ch := st.PeekChunk(id)
		putU32(id)
		putU32(ch.Len())
		ch.ForEach(func(off int, v float64) bool {
			putU32(off)
			putF64(v)
			return true
		})
	}
	return bw.Flush()
}

// LoadSchema reads a schema stream written by SaveSchema into a cube
// backed by an empty chunk store (chunks come from a storage tier).
// Any binary cube stream is accepted; cells, if present, load too.
func LoadSchema(r io.Reader) (*cube.Cube, error) { return LoadBinary(r) }

// binReader wraps error-sticky reads over a buffered reader.
type binReader struct {
	r   *bufio.Reader
	err error
}

func (br *binReader) bytes(n int) []byte {
	if br.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br.r, b); err != nil {
		br.err = err
		return nil
	}
	return b
}

func (br *binReader) u8() int {
	b := br.bytes(1)
	if b == nil {
		return 0
	}
	return int(b[0])
}
func (br *binReader) u16() int {
	b := br.bytes(2)
	if b == nil {
		return 0
	}
	return int(binary.LittleEndian.Uint16(b))
}
func (br *binReader) u32() int {
	b := br.bytes(4)
	if b == nil {
		return 0
	}
	return int(binary.LittleEndian.Uint32(b))
}
func (br *binReader) i32() int32 {
	b := br.bytes(4)
	if b == nil {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(b))
}
func (br *binReader) f64() float64 {
	b := br.bytes(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
func (br *binReader) str() string {
	n := br.u16()
	b := br.bytes(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// LoadBinary reads a cube written by SaveBinary.
func LoadBinary(r io.Reader) (*cube.Cube, error) {
	br := &binReader{r: bufio.NewReader(r)}
	if magic := br.bytes(len(binMagic)); string(magic) != binMagic {
		if br.err != nil {
			return nil, fmt.Errorf("workload: binary header: %w", br.err)
		}
		return nil, fmt.Errorf("workload: bad magic %q", magic)
	}
	if v := br.u16(); v != binVersion {
		return nil, fmt.Errorf("workload: unsupported binary version %d", v)
	}
	ndims := br.u16()
	if ndims == 0 || ndims > 64 {
		return nil, fmt.Errorf("workload: implausible dimension count %d", ndims)
	}
	dims := make([]*dimension.Dimension, ndims)
	for i := range dims {
		name := br.str()
		flags := br.u8()
		d := dimension.New(name, flags&1 != 0)
		if flags&2 != 0 {
			d.MarkMeasure()
		}
		nMembers := br.u32()
		if br.err != nil {
			return nil, br.err
		}
		for id := 1; id < nMembers; id++ {
			parent := br.i32()
			mname := br.str()
			if br.err != nil {
				return nil, br.err
			}
			if parent < 0 || int(parent) >= id {
				return nil, fmt.Errorf("workload: member %d of %s references invalid parent %d", id, name, parent)
			}
			parentPath := d.Path(dimension.MemberID(parent))
			if _, err := d.Add(parentPath, mname); err != nil {
				return nil, fmt.Errorf("workload: rebuilding %s: %w", name, err)
			}
		}
		dims[i] = d
	}
	nBind := br.u16()
	type bindRec struct {
		vi, pi int
		vs     map[dimension.MemberID][]int
	}
	var binds []bindRec
	for i := 0; i < nBind; i++ {
		rec := bindRec{vi: br.u16(), pi: br.u16(), vs: map[dimension.MemberID][]int{}}
		if rec.vi >= ndims || rec.pi >= ndims {
			return nil, fmt.Errorf("workload: binding references dimension out of range")
		}
		nVS := br.u32()
		for j := 0; j < nVS; j++ {
			id := br.i32()
			nOrds := br.u32()
			if br.err != nil {
				return nil, br.err
			}
			ords := make([]int, nOrds)
			for k := range ords {
				ords[k] = br.u32()
			}
			rec.vs[dimension.MemberID(id)] = ords
		}
		binds = append(binds, rec)
	}
	gn := br.u16()
	if gn != ndims {
		return nil, fmt.Errorf("workload: geometry arity %d does not match %d dimensions", gn, ndims)
	}
	extents := make([]int, gn)
	for i := range extents {
		extents[i] = br.u32()
	}
	chunkDims := make([]int, gn)
	for i := range chunkDims {
		chunkDims[i] = br.u32()
	}
	if br.err != nil {
		return nil, br.err
	}
	for i, d := range dims {
		if d.NumLeaves() != extents[i] {
			return nil, fmt.Errorf("workload: dimension %s has %d leaves but geometry says %d", d.Name(), d.NumLeaves(), extents[i])
		}
	}
	g, err := chunk.NewGeometry(extents, chunkDims)
	if err != nil {
		return nil, err
	}
	st := chunk.NewStore(g)
	c := cube.NewWithStore(st, dims...)
	for _, rec := range binds {
		b := dimension.NewBinding(dims[rec.vi], dims[rec.pi])
		for id, ords := range rec.vs {
			if int(id) >= dims[rec.vi].NumMembers() {
				return nil, fmt.Errorf("workload: validity set references member %d outside dimension %s", id, dims[rec.vi].Name())
			}
			b.SetVS(id, ords...)
		}
		if err := c.AddBinding(b); err != nil {
			return nil, err
		}
	}
	nChunks := br.u32()
	for i := 0; i < nChunks; i++ {
		id := br.u32()
		nCells := br.u32()
		if br.err != nil {
			return nil, br.err
		}
		if id >= g.NumChunks() {
			return nil, fmt.Errorf("workload: chunk id %d outside geometry (%d chunks)", id, g.NumChunks())
		}
		ch := chunk.NewSparse(g.ChunkCap())
		for j := 0; j < nCells; j++ {
			off := br.u32()
			v := br.f64()
			if br.err != nil {
				return nil, br.err
			}
			if off >= g.ChunkCap() {
				return nil, fmt.Errorf("workload: cell offset %d outside chunk capacity %d", off, g.ChunkCap())
			}
			ch.Set(off, v)
		}
		st.PutChunk(id, ch)
	}
	if br.err != nil {
		return nil, br.err
	}
	return c, nil
}
