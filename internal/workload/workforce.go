// Package workload generates the synthetic datasets the benchmarks and
// examples run on. Workforce reproduces the shape of the paper's
// evaluation dataset (§6): a real customer workforce-planning
// application with 7 dimensions — 20,250 employees rolling up into 51
// departments, 250 of whom (1%) change departments between 1 and 11
// times over a 12-month period, with 100 measures across 5 business
// scenarios (121M input cells). Retail builds the product/market cube
// used by the paper's product-bundling examples.
//
// The full paper scale is reachable (ConfigPaper), but the default
// configuration is proportionally scaled to laptop size; query cost in
// this engine is driven by the number of changing instances, chunks and
// perspectives, which the scaling preserves (see EXPERIMENTS.md).
package workload

import (
	"fmt"
	"math/rand"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// WorkforceConfig parameterizes the workforce generator.
type WorkforceConfig struct {
	// Employees is the total head count (paper: 20250).
	Employees int
	// Departments is the number of departments (paper: 51).
	Departments int
	// ChangingEmployees move between departments (paper: 250, i.e. 1%).
	ChangingEmployees int
	// MinMoves/MaxMoves bound each changing employee's reclassification
	// count over the year (paper: between 1 and 11).
	MinMoves, MaxMoves int
	// Months is the parameter-dimension extent (paper: 12).
	Months int
	// Accounts is the number of leaf measures (paper: 100).
	Accounts int
	// Scenarios is the number of business scenarios (paper: 5).
	Scenarios int
	// Seed makes generation deterministic.
	Seed int64
	// FlatMonths drops the monthly drift factor from generated values,
	// so a stable instance carries one constant value across its whole
	// validity window — the shape run-length encoding compresses. The
	// RLE benchmark figure uses it (with a period-fastest ChunkDims) to
	// model validity-window cubes; default keeps the drift.
	FlatMonths bool
	// ChunkDims sets the chunk edge for
	// (Department, Period, Account, Scenario, Currency, Version,
	// ValueType); zero entries get defaults.
	ChunkDims []int
}

// ConfigPaper returns the paper's full dataset shape (≈121M input
// cells; needs several GB of memory — benchmarks use ConfigDefault).
func ConfigPaper() WorkforceConfig {
	return WorkforceConfig{
		Employees: 20250, Departments: 51, ChangingEmployees: 250,
		MinMoves: 1, MaxMoves: 11, Months: 12, Accounts: 100, Scenarios: 5,
		Seed: 1,
	}
}

// ConfigDefault returns a laptop-scale configuration preserving the
// paper's ratios where they matter: 51 departments, 250 changing
// employees with 1–11 moves, 12 months.
func ConfigDefault() WorkforceConfig {
	return WorkforceConfig{
		Employees: 4050, Departments: 51, ChangingEmployees: 250,
		MinMoves: 1, MaxMoves: 11, Months: 12, Accounts: 10, Scenarios: 2,
		Seed: 1,
	}
}

// ConfigTiny returns a configuration small enough for unit tests.
func ConfigTiny() WorkforceConfig {
	return WorkforceConfig{
		Employees: 60, Departments: 6, ChangingEmployees: 10,
		MinMoves: 1, MaxMoves: 4, Months: 12, Accounts: 4, Scenarios: 2,
		Seed: 1,
	}
}

// Validate checks the configuration.
func (c WorkforceConfig) Validate() error {
	switch {
	case c.Employees <= 0 || c.Departments <= 0 || c.Months <= 0 ||
		c.Accounts <= 0 || c.Scenarios <= 0:
		return fmt.Errorf("workload: non-positive size in %+v", c)
	case c.ChangingEmployees > c.Employees:
		return fmt.Errorf("workload: %d changing employees exceed %d employees", c.ChangingEmployees, c.Employees)
	case c.MinMoves < 1 || c.MaxMoves < c.MinMoves:
		return fmt.Errorf("workload: bad move bounds [%d, %d]", c.MinMoves, c.MaxMoves)
	case c.MaxMoves >= c.Months:
		return fmt.Errorf("workload: %d moves do not fit in %d months", c.MaxMoves, c.Months)
	case c.Departments < 2 && c.ChangingEmployees > 0:
		return fmt.Errorf("workload: moves require at least 2 departments")
	}
	return nil
}

// Workforce is the generated dataset.
type Workforce struct {
	Cube   *cube.Cube
	Config WorkforceConfig
	// Changing lists the changing employees' base names, in order.
	Changing []string
	// MovesOf maps a changing employee to their number of moves.
	MovesOf map[string]int
}

// Dimension name constants of the workforce schema.
const (
	DimDepartment = "Department"
	DimPeriod     = "Period"
	DimAccount    = "Account"
	DimScenario   = "Scenario"
	DimCurrency   = "Currency"
	DimVersion    = "Version"
	DimValueType  = "ValueType"
)

// NewWorkforce generates the dataset deterministically from the
// configuration.
func NewWorkforce(cfg WorkforceConfig) (*Workforce, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Department dimension: departments over employees. Employees are
	// dealt round-robin so departments have near-equal size.
	dept := dimension.New(DimDepartment, false)
	deptNames := make([]string, cfg.Departments)
	for d := 0; d < cfg.Departments; d++ {
		deptNames[d] = fmt.Sprintf("Dept%02d", d)
		dept.MustAdd("", deptNames[d])
	}
	empNames := make([]string, cfg.Employees)
	homeDept := make([]int, cfg.Employees)
	for e := 0; e < cfg.Employees; e++ {
		empNames[e] = fmt.Sprintf("Emp%05d", e)
		homeDept[e] = e % cfg.Departments
		dept.MustAdd(deptNames[homeDept[e]], empNames[e])
	}

	// Period: quarters over months (ordered).
	period := dimension.New(DimPeriod, true)
	for m := 0; m < cfg.Months; m++ {
		q := fmt.Sprintf("Q%d", m/3+1)
		if m%3 == 0 {
			period.MustAdd("", q)
		}
		period.MustAdd(q, monthName(m))
	}

	// Account: a Compensation group over the leaf accounts.
	account := dimension.New(DimAccount, false)
	account.MarkMeasure()
	account.MustAdd("", "AllAccounts")
	for a := 0; a < cfg.Accounts; a++ {
		account.MustAdd("AllAccounts", fmt.Sprintf("Acct%03d", a))
	}

	scenario := dimension.New(DimScenario, false)
	for s := 0; s < cfg.Scenarios; s++ {
		name := "Current"
		if s > 0 {
			name = fmt.Sprintf("Scenario%d", s)
		}
		scenario.MustAdd("", name)
	}
	currency := dimension.New(DimCurrency, false)
	currency.MustAdd("", "Local")
	version := dimension.New(DimVersion, false)
	version.MustAdd("", "BU Version_1")
	valueType := dimension.New(DimValueType, false)
	valueType.MustAdd("", "HSP_InputValue")

	// Moves: each changing employee is reclassified MinMoves..MaxMoves
	// times at distinct months ≥ 1 (the first month uses the home
	// department).
	type move struct {
		month, dept int
	}
	movesOf := map[string]int{}
	changing := make([]string, 0, cfg.ChangingEmployees)
	empMoves := make([][]move, cfg.Employees)
	for e := 0; e < cfg.ChangingEmployees; e++ {
		n := cfg.MinMoves + r.Intn(cfg.MaxMoves-cfg.MinMoves+1)
		months := r.Perm(cfg.Months - 1)[:n]
		for i := 0; i < len(months); i++ {
			months[i]++ // moves happen from month 1 onward
		}
		sortInts(months)
		cur := homeDept[e]
		var ms []move
		for _, m := range months {
			next := r.Intn(cfg.Departments - 1)
			if next >= cur {
				next++
			}
			ms = append(ms, move{month: m, dept: next})
			cur = next
		}
		empMoves[e] = ms
		changing = append(changing, empNames[e])
		movesOf[empNames[e]] = len(ms)
	}

	// Add the extra instances and compute validity sets.
	b := dimension.NewBinding(dept, period)
	instAt := make([][]dimension.MemberID, cfg.Employees) // per employee, instance per month
	for e := 0; e < cfg.Employees; e++ {
		ms := empMoves[e]
		if len(ms) == 0 {
			continue
		}
		// Build the per-month department series.
		series := make([]int, cfg.Months)
		cur := homeDept[e]
		mi := 0
		for m := 0; m < cfg.Months; m++ {
			for mi < len(ms) && ms[mi].month == m {
				cur = ms[mi].dept
				mi++
			}
			series[m] = cur
		}
		// Validity sets per distinct department.
		monthsByDept := map[int][]int{}
		for m, d := range series {
			monthsByDept[d] = append(monthsByDept[d], m)
		}
		instAt[e] = make([]dimension.MemberID, cfg.Months)
		for d, months := range monthsByDept {
			path := deptNames[d] + "/" + empNames[e]
			id, err := dept.Lookup(path)
			if err != nil {
				id = dept.MustAdd(deptNames[d], empNames[e])
			}
			b.SetVS(id, months...)
			for _, m := range months {
				instAt[e][m] = id
			}
		}
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated binding invalid: %w", err)
	}

	// Chunked store.
	dims := []*dimension.Dimension{dept, period, account, scenario, currency, version, valueType}
	extents := make([]int, len(dims))
	for i, d := range dims {
		extents[i] = d.NumLeaves()
	}
	cd := defaultChunkDims(extents, cfg.ChunkDims)
	store := chunk.NewStore(chunk.MustGeometry(extents, cd))
	c := cube.NewWithStore(store, dims...)
	if err := c.AddBinding(b); err != nil {
		return nil, err
	}

	// Input data: every account for every employee-month (under the
	// valid instance), per scenario. Values are salary-like.
	addr := make([]int, len(dims))
	for e := 0; e < cfg.Employees; e++ {
		base := 4000 + r.Intn(6000)
		for m := 0; m < cfg.Months; m++ {
			var inst dimension.MemberID
			if instAt[e] != nil {
				inst = instAt[e][m]
			} else {
				inst = dept.MustLookup(deptNames[homeDept[e]] + "/" + empNames[e])
			}
			io := dept.Member(inst).LeafOrdinal
			for a := 0; a < cfg.Accounts; a++ {
				for s := 0; s < cfg.Scenarios; s++ {
					addr[0] = io
					addr[1] = m
					addr[2] = a
					addr[3] = s
					addr[4], addr[5], addr[6] = 0, 0, 0
					// Salaries drift month to month so what-if columns
					// differ from actuals even for stable structures —
					// unless FlatMonths asks for constant validity
					// windows (the run-encoding benchmark shape).
					v := float64(base) * (1 + 0.01*float64(a)) * (1 + 0.1*float64(s))
					if !cfg.FlatMonths {
						v *= 1 + 0.02*float64(m)
					}
					store.Set(addr, v)
				}
			}
		}
	}
	return &Workforce{Cube: c, Config: cfg, Changing: changing, MovesOf: movesOf}, nil
}

// ChangingWithMoves returns changing employees with exactly n moves, or
// at least n moves when atLeast is true.
func (w *Workforce) ChangingWithMoves(n int, atLeast bool) []string {
	var out []string
	for _, name := range w.Changing {
		m := w.MovesOf[name]
		if m == n || (atLeast && m >= n) {
			out = append(out, name)
		}
	}
	return out
}

func monthName(m int) string {
	names := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	if m < len(names) {
		return names[m]
	}
	return fmt.Sprintf("M%02d", m+1)
}

// defaultChunkDims chooses per-dimension chunk edges: the varying
// dimension gets small chunks (merging works chunk-wise), time one
// quarter, the rest whole-extent.
func defaultChunkDims(extents, override []int) []int {
	cd := make([]int, len(extents))
	for i := range cd {
		if override != nil && i < len(override) && override[i] > 0 {
			cd[i] = override[i]
			continue
		}
		switch i {
		case 0: // varying dimension: chunk rows of employees
			cd[i] = 64
		case 1: // period: one quarter per chunk
			cd[i] = 3
		default:
			cd[i] = extents[i]
		}
	}
	return cd
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
