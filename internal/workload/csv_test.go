package workload

import (
	"math"
	"strings"
	"testing"

	"whatifolap/internal/paperdata"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := paperdata.Warehouse()
	var sb strings.Builder
	if err := Save(orig, &sb); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDims() != orig.NumDims() {
		t.Fatalf("dims = %d, want %d", loaded.NumDims(), orig.NumDims())
	}
	if loaded.NumCells() != orig.NumCells() {
		t.Fatalf("cells = %d, want %d", loaded.NumCells(), orig.NumCells())
	}
	// Dimension shapes agree.
	for i := 0; i < orig.NumDims(); i++ {
		if loaded.Dim(i).NumMembers() != orig.Dim(i).NumMembers() {
			t.Fatalf("dim %d members = %d, want %d", i, loaded.Dim(i).NumMembers(), orig.Dim(i).NumMembers())
		}
		if loaded.Dim(i).Ordered() != orig.Dim(i).Ordered() {
			t.Fatalf("dim %d ordered flag differs", i)
		}
		if loaded.Dim(i).Measure() != orig.Dim(i).Measure() {
			t.Fatalf("dim %d measure flag differs", i)
		}
	}
	// Every original cell survives (addresses may renumber identically
	// since hierarchies are rebuilt in the same order).
	orig.Store().NonNull(func(addr []int, v float64) bool {
		if got := loaded.Leaf(addr); got != v {
			t.Fatalf("cell %v = %v, want %v", addr, got, v)
		}
		return true
	})
	// Bindings and validity sets survive.
	lb := loaded.BindingFor("Organization")
	if lb == nil {
		t.Fatal("binding lost")
	}
	ob := orig.BindingFor("Organization")
	for _, id := range orig.Dim(0).Leaves() {
		p := orig.Dim(0).Path(id)
		lid := loaded.Dim(0).MustLookup(p)
		if !lb.ValiditySet(lid).Equal(ob.ValiditySet(id)) {
			t.Fatalf("VS of %s differs after round trip", p)
		}
	}
}

func TestLoadChunked(t *testing.T) {
	orig := paperdata.Warehouse()
	var sb strings.Builder
	if err := Save(orig, &sb); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(sb.String()), []int{3, 2, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumCells() != orig.NumCells() {
		t.Fatalf("chunked cells = %d, want %d", loaded.NumCells(), orig.NumCells())
	}
}

func TestLoadErrors(t *testing.T) {
	for _, src := range []string{
		"garbage,x",
		"dimension,D",                                        // short record
		"member,Nope,,a",                                     // unknown dim
		"dimension,D,unordered\nmember,D",                    // short member
		"dimension,D,unordered\nbinding,D,E",                 // unknown param
		"dimension,D,unordered\nvs,D,a,0",                    // vs before binding
		"dimension,D,unordered\nmember,D,,a\ncell,a",         // short cell
		"dimension,D,unordered\nmember,D,,a\ncell,a,xyz",     // bad value
		"dimension,D,unordered\nmember,D,,a\ncell,a,b,3",     // arity
		"dimension,D,unordered\ndimension,D,unordered",       // dup dim
		"dimension,D,unordered\nmember,D,,a\ncell,missing,3", // unknown member
		"",
	} {
		if _, err := Load(strings.NewReader(src), nil); err == nil {
			t.Errorf("Load(%q) should fail", src)
		}
	}
}

func TestLoadCommentsAndBlank(t *testing.T) {
	src := `
# a comment
dimension,D,ordered

member,D,,a
member,D,,b
cell,a,1.5
`
	c, err := Load(strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumCells() != 1 {
		t.Fatalf("cells = %d", c.NumCells())
	}
	if got := c.Leaf([]int{0}); math.Abs(got-1.5) > 1e-15 {
		t.Fatalf("cell = %v", got)
	}
	if !c.Dim(0).Ordered() {
		t.Fatal("ordered flag lost")
	}
}

func TestWorkforceRoundTrip(t *testing.T) {
	w, err := NewWorkforce(ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Save(w.Cube, &sb); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(sb.String()), []int{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumCells() != w.Cube.NumCells() {
		t.Fatalf("cells = %d, want %d", loaded.NumCells(), w.Cube.NumCells())
	}
	if err := loaded.BindingFor(DimDepartment).Validate(); err != nil {
		t.Fatal(err)
	}
}
