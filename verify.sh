#!/bin/sh
# Tier-1 verification gate. Every PR must leave this green.
set -eu

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

# Hot-path fmt gate: span recording (internal/trace/trace.go) and the
# staged executor (internal/core/exec.go) must not import fmt — span
# formatting happens only at exposition time (trace/render.go, the
# server's prom/slowlog surfaces). An fmt import here would put
# reflection-based formatting machinery on the per-chunk scan path.
echo '>> hot-path fmt-import check'
for f in internal/trace/trace.go internal/core/exec.go; do
    if grep -q '"fmt"' "$f"; then
        echo "verify: $f imports fmt (hot path must not format)" >&2
        exit 1
    fi
done

echo '>> go test ./...'
go test ./...

# Race-detector pass over the concurrent paths: the serving layer's
# stress, cache and httptest endpoint tests, the engine's parallel
# merge-group scan and overlay-kernel equivalence tests, the buffer
# pool's concurrent fault-in tests, and the observability layer (span
# recorder, trace-derived histograms, slow-query log, EXPLAIN).
echo ">> go test -race -run 'Concurrent|Server|Cache|Parallel|Pool|Overlay|Kernel|Trace|Slowlog|Explain' ./..."
go test -race -run 'Concurrent|Server|Cache|Parallel|Pool|Overlay|Kernel|Trace|Slowlog|Explain' ./...

echo 'verify: ok'
