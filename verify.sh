#!/bin/sh
# Tier-1 verification gate. Every PR must leave this green.
set -eu

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test ./...'
go test ./...

# Race-detector pass over the concurrent paths: the serving layer's
# stress, cache and httptest endpoint tests, the engine's parallel
# merge-group scan and overlay-kernel equivalence tests, and the
# buffer pool's concurrent fault-in tests.
echo ">> go test -race -run 'Concurrent|Server|Cache|Parallel|Pool|Overlay|Kernel' ./..."
go test -race -run 'Concurrent|Server|Cache|Parallel|Pool|Overlay|Kernel' ./...

echo 'verify: ok'
