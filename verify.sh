#!/bin/sh
# Tier-1 verification gate. Every PR must leave this green.
set -eu

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test ./...'
go test ./...

# Race-detector pass over the concurrent serving layer: the stress
# test, cache tests and httptest endpoint tests.
echo ">> go test -race -run 'Concurrent|Server|Cache' ./..."
go test -race -run 'Concurrent|Server|Cache' ./...

echo 'verify: ok'
