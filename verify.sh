#!/bin/sh
# Tier-1 verification gate. Every PR must leave this green.
set -eu

# stage NAME CMD...: run one gate stage and report its wall-clock
# seconds, so regressions in the gate itself (a slow analyzer, a test
# blow-up) are visible in CI logs without re-running under time(1).
stage() {
    stage_name="$1"; shift
    echo ">> $stage_name"
    stage_t0=$(date +%s)
    "$@"
    echo "   [$(( $(date +%s) - stage_t0 ))s] $stage_name"
}

stage 'go vet ./...' go vet ./...

# whatiflint: the repo's own go/analysis suite (internal/lint), run
# through go vet's -vettool protocol so findings arrive per package with
# file:line positions. It machine-checks the invariants verify.sh used
# to grep for and several it never could:
#   hotpathfmt    - no fmt/reflect/log on declared hot-path files
#                   (internal/trace/trace.go, internal/core/exec.go,
#                   internal/chunk/overlay.go, internal/chunk/chain.go,
#                   internal/chunk/run.go, internal/obs/retain.go),
#                   including transitively
#                   re-exported formatting and per-call errors.New
#   semexhaustive - switches over the five query semantics (paper §3)
#                   and the eval mode must cover every constant
#   ctxflow       - library code threads the caller's context; chunk-
#                   read loops must be cancellable
#   lockguard     - no blocking calls (disk, segment, obs sinks) while
#                   chunk-store mutexes are held
#   monotonic     - span-recording paths stay on the monotonic clock
#   allocguard    - the declared hot-path files stay heap-silent: no
#                   interface boxing, string conversions, capturing
#                   closures or map makes in loops, growth appends, or
#                   loop calls into helpers that allocate (tracked via
#                   cross-package facts)
#   releasepair   - every acquire (Lock, Pin, span Start, NewLayer,
#                   CloneTier) is released on every path, including
#                   early returns and panics
#   atomicfield   - a field accessed through sync/atomic is accessed
#                   atomically everywhere, across packages
# Each diagnostic names the rule and the fix; escape hatches are
# reviewable //lint: directives carrying a reason (see DESIGN.md).
whatiflint_gate() {
    WHATIFLINT="${TMPDIR:-/tmp}/whatiflint.$$"
    go build -o "$WHATIFLINT" ./cmd/whatiflint
    go vet -vettool="$WHATIFLINT" ./...
    rm -f "$WHATIFLINT"
}
stage 'whatiflint (go vet -vettool)' whatiflint_gate

# Every justification directive must carry a reason; the analyzers
# enforce this only where a diagnostic would have fired, the audit
# enforces it everywhere. `sh scripts/lint-stats.sh` (no flag) prints
# the full escape-hatch inventory with per-rule counts.
stage 'lint directive audit' sh scripts/lint-stats.sh --check

stage 'go build ./...' go build ./...

stage 'go test ./...' go test ./...

# Race-detector pass over the concurrent paths: the serving layer's
# stress, cache and httptest endpoint tests, the engine's parallel
# merge-group scan and overlay-kernel equivalence tests, the buffer
# pool's concurrent fault-in tests, the observability layer (span
# recorder, trace-derived histograms, slow-query log, EXPLAIN, the
# metrics-history collector, tail-sampled trace retention, the event
# log, and the whatif -top view), the scenario workspace
# fork/edit/query races, the storage tier (segment reads, manifest
# commits, background write-back), the lint suite's analyzer/driver
# tests, and the run-encoded representation (run-aware scan kernel
# equivalence, sub-task splitting, daemon RLE restart).
stage 'go test -race (concurrent paths)' \
    go test -race -run 'Concurrent|Server|Cache|Parallel|Pool|Overlay|Kernel|Trace|Slowlog|Explain|Lint|Scenario|Segment|Manifest|Writeback|Run|Rle|Subtask|History|Retain|Event|Top' ./...

# Advisory (non-fatal): known-vulnerability scan, skipped when the
# toolchain image does not ship govulncheck or has no network.
if command -v govulncheck >/dev/null 2>&1; then
    echo '>> govulncheck ./... (advisory)'
    govulncheck ./... || echo 'verify: govulncheck reported findings (advisory only)'
else
    echo '>> govulncheck not installed; skipping (advisory)'
fi

echo 'verify: ok'
