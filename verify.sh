#!/bin/sh
# Tier-1 verification gate. Every PR must leave this green.
set -eu

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test ./...'
go test ./...

# Race-detector pass over the concurrent paths: the serving layer's
# stress, cache and httptest endpoint tests, plus the engine's
# parallel merge-group scan tests.
echo ">> go test -race -run 'Concurrent|Server|Cache|Parallel' ./..."
go test -race -run 'Concurrent|Server|Cache|Parallel' ./...

echo 'verify: ok'
