package olap_test

import (
	"math"
	"strings"
	"testing"

	olap "whatifolap"
)

// TestQuickstart exercises the README's quickstart path end to end
// through the public API only.
func TestQuickstart(t *testing.T) {
	c := olap.PaperWarehouse()
	grid, err := olap.Query(c, `
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS,
       {[PTE].Children} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	if grid.NumRows() == 0 || grid.NumCols() == 0 {
		t.Fatal("empty grid")
	}
	if !strings.Contains(grid.String(), "PTE/Joe") {
		t.Fatal("grid should include PTE/Joe row")
	}
}

// TestBuildCubeFromScratch builds a minimal varying cube through the
// public constructors and runs both scenario pipelines on it.
func TestBuildCubeFromScratch(t *testing.T) {
	org := olap.NewDimension("Org", false)
	org.MustAdd("", "A")
	org.MustAdd("A", "x")
	org.MustAdd("", "B")
	org.MustAdd("B", "x")

	tim := olap.NewDimension("T", true)
	tim.MustAdd("", "t0")
	tim.MustAdd("", "t1")
	tim.MustAdd("", "t2")
	tim.MustAdd("", "t3")

	c := olap.NewCube(org, tim)
	b := olap.NewBinding(org, tim)
	b.SetVS(org.MustLookup("A/x"), 0, 1)
	b.SetVS(org.MustLookup("B/x"), 2, 3)
	if err := c.AddBinding(b); err != nil {
		t.Fatal(err)
	}
	for _, cell := range []struct {
		inst string
		m    int
		v    float64
	}{{"A/x", 0, 1}, {"A/x", 1, 2}, {"B/x", 2, 4}, {"B/x", 3, 8}} {
		c.SetValue([]olap.MemberID{org.MustLookup(cell.inst), tim.Leaf(cell.m).ID}, cell.v)
	}

	// Negative scenario: pretend the reclassification never happened.
	out, err := olap.ApplyPerspectives(c, "Org", olap.Forward, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	ax := out.DimByName("Org").MustLookup("A/x")
	total, err := olap.CellValue(c, out, []olap.MemberID{ax, tim.Root()}, olap.Visual)
	if err != nil {
		t.Fatal(err)
	}
	if total != 15 {
		t.Fatalf("A/x yearly total under forward = %v, want 15", total)
	}

	// Positive scenario: move x from A to B at t1.
	split, err := olap.ApplyChanges(c, "Org", []olap.Change{
		{Member: "x", OldParent: "A", NewParent: "B", T: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bx := split.DimByName("Org").MustLookup("B/x")
	bTotal, err := olap.CellValue(c, split, []olap.MemberID{bx, tim.Root()}, olap.Visual)
	if err != nil {
		t.Fatal(err)
	}
	if bTotal != 14 {
		t.Fatalf("B/x total after split = %v, want 2+4+8=14", bTotal)
	}
}

// TestEngineThroughFacade runs the chunked engine via the facade with a
// simulated disk attached.
func TestEngineThroughFacade(t *testing.T) {
	c := olap.PaperWarehouseChunked()
	e, err := olap.NewEngine(c, "Organization")
	if err != nil {
		t.Fatal(err)
	}
	d, err := olap.NewDisk(olap.DefaultDiskModel())
	if err != nil {
		t.Fatal(err)
	}
	e.AttachDisk(d)
	e.SetReadOrder(olap.OrderPebbling)
	// The engine type is core.Engine; its query types are internal, so
	// facade users drive it through extended MDX instead.
	grid, err := olap.Query(c, `
WITH PERSPECTIVE {(Jan)} FOR Organization STATIC
SELECT {[Time].[Qtr1]} ON COLUMNS, {[FTE].Children} ON ROWS
FROM W WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	if grid.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3 (Joe, Lisa, Sue)", grid.NumRows())
	}
}

func TestWorkforceThroughFacade(t *testing.T) {
	cfg := olap.WorkforceDefault()
	cfg.Employees, cfg.ChangingEmployees, cfg.Departments = 120, 12, 8
	cfg.Accounts, cfg.Scenarios = 3, 1
	w, err := olap.NewWorkforce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Changing) != 12 {
		t.Fatalf("changing = %d", len(w.Changing))
	}
	if _, err := olap.NewEngine(w.Cube, "Department"); err != nil {
		t.Fatal(err)
	}
	paper := olap.WorkforcePaper()
	if paper.Employees != 20250 || paper.Departments != 51 || paper.ChangingEmployees != 250 {
		t.Fatalf("paper config drifted: %+v", paper)
	}
}

func TestRetailThroughFacade(t *testing.T) {
	rt, err := olap.NewRetailByTime(olap.RetailDefault())
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Moving) == 0 {
		t.Fatal("no moving products")
	}
	rm, err := olap.NewRetailByMarket(olap.RetailDefault())
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Moving) == 0 {
		t.Fatal("no market-varying products")
	}
}

func TestNullConstant(t *testing.T) {
	if !olap.IsNull(olap.Null) {
		t.Fatal("Null should be IsNull")
	}
	if olap.IsNull(0) || !math.IsNaN(olap.Null) {
		t.Fatal("Null semantics wrong")
	}
}

func TestNewChunkedCubeValidation(t *testing.T) {
	d := olap.NewDimension("D", false)
	d.MustAdd("", "a")
	if _, err := olap.NewChunkedCube([]int{1, 1}, d); err == nil {
		t.Fatal("chunk-dims arity mismatch should fail")
	}
	c, err := olap.NewChunkedCube([]int{1}, d)
	if err != nil {
		t.Fatal(err)
	}
	c.SetLeaf([]int{0}, 42)
	if c.Leaf([]int{0}) != 42 {
		t.Fatal("chunked cube roundtrip failed")
	}
}

func TestSpillThroughFacade(t *testing.T) {
	c := olap.PaperWarehouseChunked()
	if err := olap.SpillTo(c, t.TempDir()+"/cube.spill", 200); err != nil {
		t.Fatal(err)
	}
	grid, err := olap.Query(c, `
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {[Time].[Qtr1]} ON COLUMNS, {[PTE].[Joe]} ON ROWS
FROM W WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Values[0][0] != 40 {
		t.Fatalf("spilled query = %v, want 40", grid.Values[0][0])
	}
	st, err := olap.CubeSpillStats(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spilled == 0 {
		t.Fatalf("spill stats after SpillTo(budget=200) = %+v, want spilled chunks", st)
	}
	if st.Faults == 0 {
		t.Fatalf("spill stats after a query = %+v, want fault-ins", st)
	}
	// Non-chunked cubes are rejected.
	if err := olap.SpillTo(olap.PaperWarehouse(), t.TempDir()+"/x", 100); err == nil {
		t.Fatal("SpillTo over MemStore should fail")
	}
	if _, err := olap.CubeSpillStats(olap.PaperWarehouse()); err == nil {
		t.Fatal("CubeSpillStats over MemStore should fail")
	}
}
