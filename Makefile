.PHONY: verify test lint lint-fix bench bench-smoke prof scenario-demo

verify:
	./verify.sh

test:
	go test ./...

# Run the repo's go/analysis suite (internal/lint) over every package,
# exactly as verify.sh does: build cmd/whatiflint and hand it to go vet
# as a -vettool, so diagnostics come out per package with file:line
# positions and vet's caching.
lint:
	go build -o bin/whatiflint ./cmd/whatiflint
	go vet -vettool=bin/whatiflint ./...

# Standalone driver mode with -fix: applies the safe suggested fixes
# (monotonic's Round(0)/Truncate(0) strips). The unitchecker protocol
# cannot apply fixes, so fixing goes through the offline driver.
lint-fix:
	go build -o bin/whatiflint ./cmd/whatiflint
	./bin/whatiflint -fix || true
	go vet -vettool=bin/whatiflint ./...

# Live curl session against an ephemeral whatifd on 127.0.0.1:18080
# (override with SCENARIO_DEMO_PORT): create a scenario on the
# workforce cube, add a hypothetical account, write cells, fork, diff
# the fork against its parent, and commit as a new catalog version.
scenario-demo:
	sh scripts/scenario-demo.sh

bench:
	go test -run XXX -bench . ./...

# A fast sanity pass over the figure benchmarks, the parallel-scan
# series, the overlay-kernel write-path comparison and the trace
# overhead guard; full numbers come from `make bench` or cmd/benchfig.
bench-smoke:
	go test -run '^$$' -bench 'BenchmarkFig|BenchmarkParallelScan|BenchmarkRelocationKernel|BenchmarkTrace' -benchtime=100ms .

# CPU profile of the relocation kernel under the trace hooks; inspect
# with `go tool pprof cpu.prof`.
prof:
	go test -run '^$$' -bench 'BenchmarkTraceOff|BenchmarkTraceOn' -benchtime=2s -cpuprofile cpu.prof .
	@echo "wrote cpu.prof — open with: go tool pprof cpu.prof"
