.PHONY: verify test bench bench-smoke prof

verify:
	./verify.sh

test:
	go test ./...

bench:
	go test -run XXX -bench . ./...

# A fast sanity pass over the figure benchmarks, the parallel-scan
# series, the overlay-kernel write-path comparison and the trace
# overhead guard; full numbers come from `make bench` or cmd/benchfig.
bench-smoke:
	go test -run '^$$' -bench 'BenchmarkFig|BenchmarkParallelScan|BenchmarkRelocationKernel|BenchmarkTrace' -benchtime=100ms .

# CPU profile of the relocation kernel under the trace hooks; inspect
# with `go tool pprof cpu.prof`.
prof:
	go test -run '^$$' -bench 'BenchmarkTraceOff|BenchmarkTraceOn' -benchtime=2s -cpuprofile cpu.prof .
	@echo "wrote cpu.prof — open with: go tool pprof cpu.prof"
