.PHONY: verify test bench

verify:
	./verify.sh

test:
	go test ./...

bench:
	go test -run XXX -bench . ./...
