.PHONY: verify test bench bench-smoke

verify:
	./verify.sh

test:
	go test ./...

bench:
	go test -run XXX -bench . ./...

# A fast sanity pass over the figure benchmarks, the parallel-scan
# series and the overlay-kernel write-path comparison; full numbers
# come from `make bench` or cmd/benchfig.
bench-smoke:
	go test -run '^$$' -bench 'BenchmarkFig|BenchmarkParallelScan|BenchmarkRelocationKernel' -benchtime=100ms .
