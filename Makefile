.PHONY: verify test lint lint-fix lint-stats bench bench-smoke prof scenario-demo segment-smoke obs-demo

verify:
	./verify.sh

test:
	go test ./...

# Run the repo's go/analysis suite (internal/lint) over every package,
# exactly as verify.sh does: build cmd/whatiflint and hand it to go vet
# as a -vettool, so diagnostics come out per package with file:line
# positions and vet's caching.
lint:
	go build -o bin/whatiflint ./cmd/whatiflint
	go vet -vettool=bin/whatiflint ./...

# Standalone driver mode with -fix: applies the safe suggested fixes
# (monotonic's Round(0)/Truncate(0) strips, releasepair's insertion of
# the missing release before a must-held early return). The unitchecker
# protocol cannot apply fixes, so fixing goes through the offline
# driver; the vettool pass afterwards confirms the tree is clean.
lint-fix:
	go build -o bin/whatiflint ./cmd/whatiflint
	./bin/whatiflint -fix || true
	go vet -vettool=bin/whatiflint ./...

# Escape-hatch inventory: every //lint: directive with its location,
# reason and per-rule counts. verify.sh runs the --check mode, which
# fails on justification directives that carry no reason.
lint-stats:
	sh scripts/lint-stats.sh

# Live curl session against an ephemeral whatifd on 127.0.0.1:18080
# (override with SCENARIO_DEMO_PORT): create a scenario on the
# workforce cube, add a hypothetical account, write cells, fork, diff
# the fork against its parent, and commit as a new catalog version.
scenario-demo:
	sh scripts/scenario-demo.sh

# Live curl session against an ephemeral whatifd on 127.0.0.1:18081
# (override with OBS_DEMO_PORT) showing the observability layer: the
# /metrics/history time-series evolving under miss-then-hit traffic, a
# retained trace fetched back by the X-Trace-Id a query response
# carried, and the structured lifecycle event log.
obs-demo:
	sh scripts/obs-demo.sh

# Fast check of the persistent storage tier: segment file round-trip,
# fail-closed corruption handling, manifest crash recovery, catalog
# write-back/restore, the segment-vs-memory equivalence pin, and the
# daemon's kill -9 restart round trip.
segment-smoke:
	go test -count=1 -run 'Segment|Manifest|Persist|Writeback|Equivalence|Kill9' . ./internal/segment/ ./internal/server/ ./cmd/whatifd/

bench:
	go test -run XXX -bench . ./...

# A fast sanity pass over the figure benchmarks, the parallel-scan
# series, the overlay-kernel write-path comparison and the trace and
# trace-retention overhead guards; full numbers come from `make bench`
# or cmd/benchfig.
bench-smoke:
	go test -run '^$$' -bench 'BenchmarkFig|BenchmarkParallelScan|BenchmarkRelocationKernel|BenchmarkRleScan|BenchmarkTrace|BenchmarkObs' -benchtime=100ms .

# CPU profile of the relocation kernel under the trace hooks; inspect
# with `go tool pprof cpu.prof`.
prof:
	go test -run '^$$' -bench 'BenchmarkTraceOff|BenchmarkTraceOn' -benchtime=2s -cpuprofile cpu.prof .
	@echo "wrote cpu.prof — open with: go tool pprof cpu.prof"
