// Workforce planning: the analysis scenarios S1–S4 from the paper's
// introduction, on the Fig. 1 warehouse, plus the paper's motivating
// budget-variance investigation on a generated workforce cube evaluated
// through the perspective-cube engine.
//
// Run with: go run ./examples/workforce
package main

import (
	"fmt"
	"log"

	olap "whatifolap"
)

func main() {
	scenarioS1()
	scenarioS3andS4()
	varianceInvestigation()
}

// scenarioS1 — "What if Tom became a contractor from March onward and
// became an FTE July onward?" — a positive scenario: two chained
// hypothetical reclassifications.
func scenarioS1() {
	fmt.Println("== S1: Tom → Contractor in Mar, → FTE in Jul (positive scenario) ==")
	c := olap.PaperWarehouse()
	grid, err := olap.Query(c, `
WITH CHANGES {([PTE].[Tom], [PTE], [Contractor], [Mar]),
              ([Contractor].[Tom], [Contractor], [FTE], [Jul])} VISUAL
SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS,
       {[PTE].[Tom], [Contractor].[Tom], [FTE].[Tom]} DIMENSION PROPERTIES [Organization] ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(grid)

	// Impact on the type-level salary aggregates, visual mode.
	grid, err = olap.Query(c, `
WITH CHANGES {([PTE].[Tom], [PTE], [Contractor], [Mar]),
              ([Contractor].[Tom], [Contractor], [FTE], [Jul])} VISUAL
SELECT {[Time].[Qtr1], [Time].[Qtr2]} ON COLUMNS,
       {[FTE], [PTE], [Contractor]} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Employee-type salary totals under the assumption:")
	fmt.Println(grid)
}

// scenarioS3andS4 — "what if whatever structure existed in January
// continued until April and then the structure in April continued
// through the rest of the year?" (S3), and the Feb/Apr/Jul variant
// (S4): negative scenarios with multi-perspective forward semantics.
func scenarioS3andS4() {
	c := olap.PaperWarehouse()
	for _, sc := range []struct {
		name, points string
	}{
		{"S3", "{(Jan), (Apr)}"},
		{"S4", "{(Feb), (Apr), (Jul)}"},
	} {
		fmt.Printf("== %s: structures at %s imposed on their ranges ==\n", sc.name, sc.points)
		grid, err := olap.Query(c, `
WITH PERSPECTIVE `+sc.points+` FOR Organization DYNAMIC FORWARD VISUAL
SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS,
       {[FTE].[Joe], [PTE].[Joe], [Contractor].[Joe]} DIMENSION PROPERTIES [Organization] ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(grid)
	}
}

// varianceInvestigation replays the paper's motivating example: monthly
// employee-expense variance is suspected to come from recent type-mix
// changes; a what-if query that holds January's structure constant over
// the year isolates the structural contribution.
func varianceInvestigation() {
	fmt.Println("== Budget variance: is it caused by the reorganizations? ==")
	cfg := olap.WorkforceDefault()
	cfg.Employees, cfg.Departments, cfg.ChangingEmployees = 600, 12, 60
	cfg.Accounts, cfg.Scenarios = 4, 1
	w, err := olap.NewWorkforce(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := olap.NewEngine(w.Cube, "Department")
	if err != nil {
		log.Fatal(err)
	}
	_ = eng // the MDX evaluator picks the engine path automatically

	dept := w.Cube.DimByName("Department")
	period := w.Cube.DimByName("Period")
	acct := w.Cube.DimByName("Account")

	// Actual monthly totals for one department vs. the counterfactual
	// where January's reporting structure persisted all year (forward
	// semantics, visual aggregation).
	out, err := olap.ApplyPerspectives(w.Cube, "Department", olap.Forward, []int{0})
	if err != nil {
		log.Fatal(err)
	}
	target := dept.MustLookup("Dept03")
	ids := make([]olap.MemberID, w.Cube.NumDims())
	for i := range ids {
		ids[i] = w.Cube.Dim(i).Root()
	}
	ids[2] = acct.Leaf(0).ID
	for i := 3; i < w.Cube.NumDims(); i++ {
		ids[i] = w.Cube.Dim(i).Leaf(0).ID
	}
	fmt.Println("month  actual   what-if(Jan structure)  structural variance")
	for m := 0; m < cfg.Months; m++ {
		ids[0] = target
		ids[1] = period.Leaf(m).ID
		actual, err := olap.CellValue(w.Cube, w.Cube, ids, olap.NonVisual)
		if err != nil {
			log.Fatal(err)
		}
		whatIf, err := olap.CellValue(w.Cube, out, ids, olap.Visual)
		if err != nil {
			log.Fatal(err)
		}
		variance := 0.0
		if !olap.IsNull(actual) && !olap.IsNull(whatIf) {
			variance = actual - whatIf
		}
		fmt.Printf("%-5s  %8.0f %12.0f %21.0f\n", period.Leaf(m).Name, actual, whatIf, variance)
	}
	fmt.Println()
	fmt.Println("A non-zero variance column means the department's expense moves were")
	fmt.Println("caused by reclassifications, not by salary changes: the what-if column")
	fmt.Println("holds January's type mix constant while using each month's actual pay.")
}
