// Optimizer: the three §8 future-work directions of the paper, live —
// algebraic what-if plan optimization, workload-aware view selection,
// and perspective-cube compression.
//
// Run with: go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"whatifolap/internal/algebra"
	"whatifolap/internal/chunk"
	"whatifolap/internal/core"
	"whatifolap/internal/lattice"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
	"whatifolap/internal/workload"
)

func main() {
	planOptimization()
	viewSelection()
	compression()
}

// planOptimization rewrites a what-if operator plan using the algebraic
// identities of the operators (paper §8: "further optimization of
// what-if queries by manipulation of the proposed algebraic operators").
func planOptimization() {
	fmt.Println("== Algebraic plan optimization ==")
	// "Among Joe's rows only, show the world under a static January
	// perspective, then keep just the FTE-classified staff" — written
	// naively, outermost first.
	plan := &algebra.PlanSelect{
		Dim:  "Organization",
		Pred: algebra.MemberIs{Ref: "Joe"},
		Child: &algebra.PlanPerspective{
			Varying: "Organization",
			Sem:     perspective.Static,
			Points:  []int{paperdata.Jan, paperdata.Jan, paperdata.Jul},
			Child: &algebra.PlanSelect{
				Dim:   "Organization",
				Pred:  algebra.Not{X: algebra.MemberIs{Ref: "Sue"}},
				Child: algebra.PlanInput{},
			},
		},
	}
	fmt.Println("naive plan:     ", plan)
	opt, rewrites := algebra.Optimize(plan)
	fmt.Println("optimized plan: ", opt)
	for _, rw := range rewrites {
		fmt.Printf("  applied %-22s %s\n", rw.Rule+":", rw.Detail)
	}
	// Both plans answer identically.
	cin := paperdata.Warehouse()
	a, err := algebra.Execute(plan, cin)
	if err != nil {
		log.Fatal(err)
	}
	b, err := algebra.Execute(opt, cin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equivalent results: %d vs %d cells\n\n", a.NumCells(), b.NumCells())
}

// viewSelection materializes the most beneficial group-by views of a
// workforce cube under a budget (paper §8: "workload aware view
// selection (a la [7])", the HRU greedy algorithm).
func viewSelection() {
	fmt.Println("== Workload-aware view selection (HRU greedy) ==")
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		log.Fatal(err)
	}
	st := w.Cube.Store().(*chunk.Store)
	g := st.Geometry()
	sizes := lattice.EstimateSizes(g, w.Cube.NumCells())
	full := lattice.Mask(1<<uint(g.NumDims())) - 1
	// The workload mostly asks (Department × Period) and (Department ×
	// Account) style queries.
	freq := map[lattice.Mask]float64{
		lattice.Mask(0b0000011): 10, // Department × Period
		lattice.Mask(0b0000101): 5,  // Department × Account
		lattice.Mask(0b0000001): 3,  // Department
	}
	sel, err := lattice.GreedySelect(sizes, full, 3, freq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lattice of %d views over %d dimensions\n", 1<<uint(g.NumDims()), g.NumDims())
	for i, v := range sel.Views {
		fmt.Printf("  pick %d: view %v (est. %.0f rows), benefit %.0f\n",
			i+1, v, sizes[v], sel.Benefits[i])
	}
	fmt.Printf("weighted workload cost: %.0f -> %.0f (%.1fx better)\n\n",
		sel.CostBefore, sel.CostAfter, sel.CostBefore/sel.CostAfter)
}

// compression contrasts the materialized perspective cube with the
// relocation-mapping representation (paper §8: "compression of
// perspective cubes").
func compression() {
	fmt.Println("== Perspective-cube compression ==")
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		log.Fatal(err)
	}
	e, err := core.New(w.Cube, workload.DimDepartment)
	if err != nil {
		log.Fatal(err)
	}
	q := core.PerspectiveQuery{
		Members:      w.Changing,
		Perspectives: []int{0, 6},
		Sem:          perspective.Forward,
		Mode:         perspective.NonVisual,
	}
	mat, err := e.ExecPerspective(q)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := e.ExecPerspectiveCompressed(q)
	if err != nil {
		log.Fatal(err)
	}
	matBytes := mat.Stats.CellsRelocated * (4*w.Cube.NumDims() + 8)
	fmt.Printf("materialized: %6d cells relocated  (~%d bytes), %d chunk reads\n",
		mat.Stats.CellsRelocated, matBytes, mat.Stats.ChunksRead)
	fmt.Printf("compressed:   %6d cells relocated  (%d mapping bytes), %d chunk reads\n",
		comp.Stats.CellsRelocated, comp.Stats.CompressedBytes, comp.Stats.ChunksRead)
	// Identical answers either way.
	name := w.Changing[0]
	inst := w.Cube.BindingFor(workload.DimDepartment).InstanceAt(name, 0)
	dept := w.Cube.DimByName(workload.DimDepartment)
	path := dept.Path(inst)
	a, err := mat.CellRefs(path, "Q1", "Acct000", "Current", "Local", "BU Version_1", "HSP_InputValue")
	if err != nil {
		log.Fatal(err)
	}
	b, err := comp.CellRefs(path, "Q1", "Acct000", "Current", "Local", "BU Version_1", "HSP_InputValue")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same Q1 aggregate for %s through both: %.2f == %.2f\n", path, a, b)
}
