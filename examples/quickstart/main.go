// Quickstart: the paper's running example end to end.
//
// Builds the Fig. 1/2 warehouse (employee Joe is reclassified FTE → PTE
// → Contractor over the year), runs a plain MDX query (Fig. 3), then
// the what-if query of Fig. 4: "what if the structures at February and
// April had each persisted forward?", under forward semantics with
// visual aggregation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	olap "whatifolap"
)

func main() {
	c := olap.PaperWarehouse()

	fmt.Println("== The input cube (Fig. 2 slice: Location=NY, Measure=Salary) ==")
	fmt.Println("Joe appears three times — one row per member instance; ⊥ marks")
	fmt.Println("months where an instance is not valid.")
	grid, err := olap.Query(c, `
SELECT {Descendants([Time], 2, SELF)} ON COLUMNS,
       {[FTE].Children, [PTE].Children, [Contractor].Children} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(grid)

	fmt.Println("== A classic MDX query (paper Fig. 3) ==")
	fmt.Println("Salary of FTE/Joe by quarter and state:")
	grid, err = olap.Query(c, `
SELECT {Time.[Qtr1], Time.[Qtr2]} ON COLUMNS,
       {[Location].[East].Children} ON ROWS
FROM Warehouse
WHERE (Organization.[FTE].[Joe], Measures.[Compensation].[Salary])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(grid)

	fmt.Println("== What-if: negate the changes (paper Fig. 4) ==")
	fmt.Println("WITH PERSPECTIVE {(Feb),(Apr)} FORWARD VISUAL: the February")
	fmt.Println("structure is imposed on [Feb,Apr), April's on [Apr,∞). Note")
	fmt.Println("(PTE/Joe, Mar) = 30, inherited from Contractor/Joe, and that")
	fmt.Println("Q1 aggregates are re-evaluated over the hypothetical cube:")
	grid, err = olap.Query(c, `
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS,
       {[PTE].Children, [Contractor].Children} DIMENSION PROPERTIES [Organization] ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(grid)

	fmt.Println("== The same scenario through the algebra API ==")
	out, err := olap.ApplyPerspectives(c, "Organization", olap.Forward, []int{1, 3}) // Feb, Apr
	if err != nil {
		log.Fatal(err)
	}
	org := out.DimByName("Organization")
	ids := []olap.MemberID{
		org.MustLookup("PTE/Joe"),
		out.DimByName("Location").MustLookup("NY"),
		out.DimByName("Time").MustLookup("Qtr1"),
		out.DimByName("Measures").MustLookup("Salary"),
	}
	visual, err := olap.CellValue(c, out, ids, olap.Visual)
	if err != nil {
		log.Fatal(err)
	}
	nonVisual, err := olap.CellValue(c, out, ids, olap.NonVisual)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1 salary of PTE/Joe under the scenario: visual=%v (Feb 10 + inherited Mar 30), non-visual=%v (original aggregate)\n",
		visual, nonVisual)
}
