// Retail: product re-bundling what-ifs, after the paper's product
// examples — §1 ("product pricing changes in select markets can result
// in changes to bundled options") and §4.2 (the split relation
// R = {(1002, 100, 200, Apr), …}).
//
// Part 1 uses a cube whose Product dimension varies over Time: some
// products were re-bundled into another family mid-year, and we ask
// what family margins would look like had the re-bundling not happened
// (negative scenario) and had it happened earlier (positive scenario on
// top of the negated history). Margins use the paper's scoped rules:
// "Margin = Sales − COGS" in general but "0.93·Sales − COGS" in the
// East.
//
// Part 2 uses a cube whose Product dimension varies over the unordered
// Market dimension — bundling differs between eastern and western
// markets — and applies a static perspective: "report everything under
// the East bundling."
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"

	olap "whatifolap"
)

func main() {
	timeVarying()
	marketVarying()
}

func timeVarying() {
	rt, err := olap.NewRetailByTime(olap.RetailDefault())
	if err != nil {
		log.Fatal(err)
	}
	c := rt.Cube
	fmt.Printf("Moving products (re-bundled at month 5): %v\n\n", rt.Moving)

	fmt.Println("== Actual family margins by month (visual ⊥ marks show the move) ==")
	grid, err := olap.Query(c, `
SELECT {Descendants([Time], 1, SELF)} ON COLUMNS,
       {[Product].Children} ON ROWS
FROM Retail
WHERE ([Market].[East], [Measures].[Margin])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(grid)

	fmt.Println("== What if the re-bundling never happened? ==")
	fmt.Println("(forward perspective at Jan: January's catalog persists all year)")
	grid, err = olap.Query(c, `
WITH PERSPECTIVE {(Jan)} FOR Product DYNAMIC FORWARD VISUAL
SELECT {[Time].Children} ON COLUMNS,
       {[Product].Children} ON ROWS
FROM Retail
WHERE ([Market].[East], [Measures].[Margin])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(grid)

	fmt.Println("== What if product 1001 had ALSO moved to family 200 in March? ==")
	fmt.Println("(positive scenario; margins re-aggregated visually)")
	grid, err = olap.Query(c, `
WITH CHANGES {([100].[1001], [100], [200], [Mar])} VISUAL
SELECT {[Time].[Feb], [Time].[Mar], [Time].[Apr]} ON COLUMNS,
       {[100], [200]} ON ROWS
FROM Retail
WHERE ([Market].[East], [Measures].[Sales])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(grid)

	fmt.Println("== Margin% ratio rule evaluated under the scenario ==")
	out, err := olap.ApplyPerspectives(c, "Product", olap.Forward, []int{0})
	if err != nil {
		log.Fatal(err)
	}
	prod := out.DimByName("Product")
	ids := []olap.MemberID{
		prod.MustLookup("100"),
		out.DimByName("Time").Root(),
		out.DimByName("Market").MustLookup("East"),
		out.DimByName("Measures").MustLookup("Margin%"),
	}
	v, err := olap.CellValue(c, out, ids, olap.Visual)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Family 100, East, full year, what-if Margin%% = %.1f%%\n\n", v)
}

func marketVarying() {
	rt, err := olap.NewRetailByMarket(olap.RetailDefault())
	if err != nil {
		log.Fatal(err)
	}
	c := rt.Cube
	fmt.Println("== Bundling that differs by market (unordered parameter dimension) ==")
	fmt.Printf("Products bundled differently out west: %v\n\n", rt.Moving)

	fmt.Println("Actual family sales per market (each product counted under its local family):")
	grid, err := olap.Query(c, `
SELECT {[Market].Levels(0).Members} ON COLUMNS,
       {[Product].Children} ON ROWS
FROM Retail
WHERE ([Measures].[Sales])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(grid)

	fmt.Println("Static perspective at market E1: the eastern bundling is authoritative —")
	fmt.Println("western rows of the east-only instances stay ⊥, and instances valid only")
	fmt.Println("out west disappear:")
	grid, err = olap.Query(c, `
WITH PERSPECTIVE {(E1)} FOR Product STATIC VISUAL
SELECT {[Market].Levels(0).Members} ON COLUMNS,
       {[Product].Children} ON ROWS
FROM Retail
WHERE ([Measures].[Sales])`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(grid)

	// Forward semantics must be rejected for unordered parameters.
	_, err = olap.ApplyPerspectives(c, "Product", olap.Forward, []int{0})
	fmt.Printf("Forward over the unordered Market dimension is rejected, as the paper\nrequires ordered parameters for dynamic semantics: %v\n", err)
}
