// Integration tests: the full pipeline — workload generation, extended
// MDX, the algebra operators, the chunked engine (materialized and
// compressed) — cross-validated against each other on randomized
// datasets and queries.
package olap_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"whatifolap/internal/algebra"
	"whatifolap/internal/core"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/mdx"
	"whatifolap/internal/perspective"
	"whatifolap/internal/workload"
)

// memCopy materializes any cube into a MemStore-backed cube sharing
// dimensions, bindings and rules — giving the algebra operators an
// identical starting point to the engine's chunked cube.
func memCopy(c *cube.Cube) *cube.Cube {
	out := cube.New(c.Dims()...)
	for _, b := range c.Bindings() {
		if err := out.AddBinding(b); err != nil {
			panic(err)
		}
	}
	out.SetRules(c.Rules())
	c.Store().NonNull(func(addr []int, v float64) bool {
		out.SetLeaf(addr, v)
		return true
	})
	return out
}

// TestQuickEnginePathsAgreeOnRandomWorkforces is the central
// cross-validation property: for random small workforces and random
// perspective queries, the algebra pipeline, the materialized engine,
// and the compressed engine produce identical leaf cells.
func TestQuickEnginePathsAgreeOnRandomWorkforces(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := workload.WorkforceConfig{
			Employees:         20 + r.Intn(60),
			Departments:       3 + r.Intn(6),
			ChangingEmployees: 3 + r.Intn(8),
			MinMoves:          1,
			MaxMoves:          1 + r.Intn(6),
			Months:            12,
			Accounts:          1 + r.Intn(3),
			Scenarios:         1,
			Seed:              seed,
		}
		w, err := workload.NewWorkforce(cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		sems := []perspective.Semantics{perspective.Static, perspective.Forward,
			perspective.ExtendedForward, perspective.Backward, perspective.ExtendedBackward}
		sem := sems[r.Intn(len(sems))]
		nPts := 1 + r.Intn(4)
		pts := make([]int, nPts)
		for i := range pts {
			pts[i] = r.Intn(cfg.Months)
		}
		scope := w.Changing[:1+r.Intn(len(w.Changing))]

		// Algebra reference.
		ref, err := algebra.ApplyPerspectives(memCopy(w.Cube), workload.DimDepartment, sem, pts)
		if err != nil {
			t.Log(err)
			return false
		}
		// Engine paths.
		e, err := core.New(w.Cube, workload.DimDepartment)
		if err != nil {
			t.Log(err)
			return false
		}
		q := core.PerspectiveQuery{Members: scope, Perspectives: pts, Sem: sem, Mode: perspective.NonVisual}
		mat, err := e.ExecPerspective(q)
		if err != nil {
			t.Log(err)
			return false
		}
		comp, err := e.ExecPerspectiveCompressed(q)
		if err != nil {
			t.Log(err)
			return false
		}

		// Compare over the scoped rows (the engine transforms only the
		// scoped members; the algebra transforms all). Check every cell
		// of every instance of every scoped member.
		dept := w.Cube.DimByName(workload.DimDepartment)
		inScope := map[int]bool{}
		for _, name := range scope {
			for _, inst := range dept.Instances(name) {
				inScope[dept.Member(inst).LeafOrdinal] = true
			}
		}
		agree := true
		probe := func(addr []int, want float64) {
			for _, got := range []float64{
				mat.Result().Leaf(addr),
				comp.Result().Leaf(addr),
			} {
				if math.IsNaN(want) != math.IsNaN(got) || (!math.IsNaN(want) && math.Abs(want-got) > 1e-9) {
					t.Logf("seed %d %v %v: cell %v = %v, want %v", seed, sem, pts, addr, got, want)
					agree = false
				}
			}
		}
		// All reference cells in scope must appear in both engine views.
		ref.Store().NonNull(func(addr []int, v float64) bool {
			if inScope[addr[0]] {
				probe(addr, v)
			}
			return agree
		})
		// And scoped engine cells must not exceed the reference: count.
		countScoped := func(c *cube.Cube) int {
			n := 0
			c.Store().NonNull(func(addr []int, v float64) bool {
				if inScope[addr[0]] {
					n++
				}
				return true
			})
			return n
		}
		nRef := countScoped(ref)
		if countScoped(mat.Result()) != nRef || countScoped(comp.Result()) != nRef {
			t.Logf("seed %d %v %v: scoped cell counts diverge (ref %d, mat %d, comp %d)",
				seed, sem, pts, nRef, countScoped(mat.Result()), countScoped(comp.Result()))
			return false
		}
		return agree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSplitInvariants: random positive scenarios preserve the
// validity-partition invariant and conserve cell values.
func TestQuickSplitInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := workload.ConfigTiny()
		cfg.Seed = seed
		w, err := workload.NewWorkforce(cfg)
		if err != nil {
			return false
		}
		c := memCopy(w.Cube)
		dept := c.DimByName(workload.DimDepartment)
		// Random chained changes on one stable employee.
		name := fmt.Sprintf("Emp%05d", cfg.ChangingEmployees+r.Intn(cfg.Employees-cfg.ChangingEmployees))
		home := dept.Member(dept.Member(dept.Instances(name)[0]).Parent).Name
		other := fmt.Sprintf("Dept%02d", r.Intn(cfg.Departments))
		if other == home {
			return true // skip degenerate draw
		}
		t1 := 1 + r.Intn(5)
		t2 := t1 + 1 + r.Intn(5)
		out, err := algebra.ApplyChanges(c, workload.DimDepartment, []algebra.Change{
			{Member: name, OldParent: home, NewParent: other, T: t1},
			{Member: name, OldParent: other, NewParent: home, T: t2},
		})
		if err != nil {
			t.Log(err)
			return false
		}
		b := out.BindingFor(workload.DimDepartment)
		if err := b.Validate(); err != nil {
			t.Log(err)
			return false
		}
		// The employee's instances partition the year.
		nd := out.DimByName(workload.DimDepartment)
		covered := 0
		for _, inst := range nd.Instances(name) {
			covered += b.ValiditySet(inst).Len()
		}
		if covered != cfg.Months {
			t.Logf("seed %d: coverage %d months, want %d", seed, covered, cfg.Months)
			return false
		}
		// Value conservation.
		sum := func(c *cube.Cube) float64 {
			s := 0.0
			c.Store().NonNull(func(addr []int, v float64) bool { s += v; return true })
			return s
		}
		return math.Abs(sum(c)-sum(out)) < 1e-6*(1+sum(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMDXOnGeneratedWorkforce runs a paper-style extended-MDX query end
// to end on a generated chunked workforce (the Fig. 10(c) shape) and
// cross-checks one grid cell against a hand-computed value.
func TestMDXOnGeneratedWorkforce(t *testing.T) {
	cfg := workload.ConfigTiny()
	w, err := workload.NewWorkforce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	emp := w.Changing[0]
	ev := mdx.NewEvaluator(w.Cube)
	grid, err := ev.Run(fmt.Sprintf(`
WITH PERSPECTIVE {(Jan), (Apr), (Jul), (Oct)} FOR Department DYNAMIC FORWARD
SELECT {[Account].Levels(0).Members} ON COLUMNS,
       {CrossJoin({[%s]}, {Descendants([Period], 1, SELF_AND_AFTER)})}
       DIMENSION PROPERTIES [Department] ON ROWS
FROM [App].[Db]
WHERE ([Scenario].[Current], [Currency].[Local], [Version].[BU Version_1], [ValueType].[HSP_InputValue])`,
		// The changing employee's name is ambiguous across instances,
		// so qualify with the January department.
		w.Cube.DimByName(workload.DimDepartment).Path(
			w.Cube.BindingFor(workload.DimDepartment).InstanceAt(emp, 0))))
	if err != nil {
		t.Fatal(err)
	}
	if grid.NumCols() != cfg.Accounts {
		t.Fatalf("cols = %d, want %d accounts", grid.NumCols(), cfg.Accounts)
	}
	// 12 months + 4 quarters of rows for the single instance.
	if grid.NumRows() != cfg.Months+4 {
		t.Fatalf("rows = %d, want %d", grid.NumRows(), cfg.Months+4)
	}
	if grid.NonNullCells() == 0 {
		t.Fatal("grid is empty")
	}
	// With P covering the year at quarter starts and forward semantics,
	// the January instance hosts the months of its stretch; its
	// dimension property is the January department.
	b := w.Cube.BindingFor(workload.DimDepartment)
	dept := w.Cube.DimByName(workload.DimDepartment)
	inst0 := b.InstanceAt(emp, 0)
	wantDept := dept.Path(dept.Member(inst0).Parent)
	found := false
	for i := range grid.RowLabels {
		if len(grid.RowProps) > i && len(grid.RowProps[i]) > 0 && grid.RowProps[i][0] == wantDept {
			found = true
		}
	}
	if !found {
		t.Fatalf("no row carries department property %q: %v", wantDept, grid.RowProps)
	}
}

// TestViewAggregationMatchesManualRollup drives visual aggregation on a
// generated cube and verifies one quarter aggregate against a manual
// sum over the view's leaf cells.
func TestViewAggregationMatchesManualRollup(t *testing.T) {
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(w.Cube, workload.DimDepartment)
	if err != nil {
		t.Fatal(err)
	}
	name := w.Changing[0]
	v, err := e.ExecPerspective(core.PerspectiveQuery{
		Members: []string{name}, Perspectives: []int{0},
		Sem: perspective.Forward, Mode: perspective.Visual,
	})
	if err != nil {
		t.Fatal(err)
	}
	dept := w.Cube.DimByName(workload.DimDepartment)
	period := w.Cube.DimByName(workload.DimPeriod)
	b := w.Cube.BindingFor(workload.DimDepartment)
	inst := b.InstanceAt(name, 0)
	q1 := period.MustLookup("Q1")

	ids := make([]dimension.MemberID, w.Cube.NumDims())
	ids[0], ids[1] = inst, q1
	for i := 2; i < len(ids); i++ {
		ids[i] = w.Cube.Dim(i).Leaf(0).ID
	}
	got, err := v.Cell(ids)
	if err != nil {
		t.Fatal(err)
	}
	manual := 0.0
	addr := make([]int, w.Cube.NumDims())
	addr[0] = dept.Member(inst).LeafOrdinal
	for m := 0; m < 3; m++ {
		addr[1] = m
		leaf := v.Result().Leaf(addr)
		if !cube.IsNull(leaf) {
			manual += leaf
		}
	}
	if math.Abs(got-manual) > 1e-9 {
		t.Fatalf("visual Q1 = %v, manual sum = %v", got, manual)
	}
}
