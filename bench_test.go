// Benchmarks regenerating the paper's evaluation (§6), one benchmark
// family per figure, plus the ablations DESIGN.md lists. Run with
//
//	go test -bench=. -benchmem
//
// Custom metrics: chunk_reads/op (engine I/O), disk_ms/op (simulated
// seek model, Fig. 12), peak_chunks (co-resident chunks under the
// chosen read order). cmd/benchfig prints the same series as CSV at a
// larger default scale.
package olap_test

import (
	"sync"
	"testing"

	"whatifolap/internal/bench"
	"whatifolap/internal/chunk"
	"whatifolap/internal/core"
	"whatifolap/internal/dimension"
	"whatifolap/internal/obs"
	"whatifolap/internal/perspective"
	"whatifolap/internal/simdisk"
	"whatifolap/internal/trace"
	"whatifolap/internal/workload"
)

// benchConfig is a reduced scale so `go test -bench=.` stays fast; the
// cmd/benchfig harness defaults to the larger ConfigDefault.
func benchConfig() workload.WorkforceConfig {
	return workload.WorkforceConfig{
		Employees: 1020, Departments: 51, ChangingEmployees: 250,
		MinMoves: 1, MaxMoves: 11, Months: 12, Accounts: 4, Scenarios: 1,
		Seed: 1,
	}
}

var (
	wfOnce sync.Once
	wf     *workload.Workforce
	wfErr  error
)

func benchWorkforce(b *testing.B) *workload.Workforce {
	b.Helper()
	wfOnce.Do(func() { wf, wfErr = workload.NewWorkforce(benchConfig()) })
	if wfErr != nil {
		b.Fatal(wfErr)
	}
	return wf
}

func newBenchEngine(b *testing.B) *core.Engine {
	b.Helper()
	e, err := core.New(benchWorkforce(b).Cube, workload.DimDepartment)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func perspectivesPrefix(k int) []int {
	ps := make([]int, k)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

// --- Fig. 11: query time vs. number of perspectives (§6.1) ---

func BenchmarkFig11MultipleMDX(b *testing.B) {
	w := benchWorkforce(b)
	e := newBenchEngine(b)
	for _, k := range []int{1, 2, 4, 6, 8, 12} {
		b.Run(subK(k), func(b *testing.B) {
			var reads int
			for i := 0; i < b.N; i++ {
				v, err := e.SimulateMultiMDX(w.Changing, perspectivesPrefix(k), perspective.NonVisual)
				if err != nil {
					b.Fatal(err)
				}
				reads = v.Stats.ChunksRead
			}
			b.ReportMetric(float64(reads), "chunk_reads/op")
		})
	}
}

func BenchmarkFig11Static(b *testing.B) {
	w := benchWorkforce(b)
	e := newBenchEngine(b)
	for _, k := range []int{1, 2, 4, 6, 8, 12} {
		b.Run(subK(k), func(b *testing.B) {
			var reads int
			for i := 0; i < b.N; i++ {
				v, err := e.ExecPerspective(core.PerspectiveQuery{
					Members: w.Changing, Perspectives: perspectivesPrefix(k),
					Sem: perspective.Static, Mode: perspective.NonVisual,
				})
				if err != nil {
					b.Fatal(err)
				}
				reads = v.Stats.ChunksRead
			}
			b.ReportMetric(float64(reads), "chunk_reads/op")
		})
	}
}

func BenchmarkFig11Forward(b *testing.B) {
	w := benchWorkforce(b)
	e := newBenchEngine(b)
	for _, k := range []int{1, 2, 4, 6, 8, 12} {
		b.Run(subK(k), func(b *testing.B) {
			var reads int
			for i := 0; i < b.N; i++ {
				v, err := e.ExecPerspective(core.PerspectiveQuery{
					Members: w.Changing, Perspectives: perspectivesPrefix(k),
					Sem: perspective.Forward, Mode: perspective.NonVisual,
				})
				if err != nil {
					b.Fatal(err)
				}
				reads = v.Stats.ChunksRead
			}
			b.ReportMetric(float64(reads), "chunk_reads/op")
		})
	}
}

// --- Fig. 12: query time vs. related-chunk separation (§6.2) ---

func BenchmarkFig12Separation(b *testing.B) {
	cfg := bench.Fig12Defaults()
	cfg.BaseSeparation = 500 // keep bench cubes small
	// Rescale the seek cap so the curve saturates inside this smaller
	// sweep, like the full-size harness run.
	cfg.Model.SeekCap = cfg.Model.PerChunk * float64(cfg.BaseSeparation) * 3.5
	for mult := 1; mult <= cfg.MaxMultiple; mult++ {
		b.Run(subK(mult), func(b *testing.B) {
			one := cfg
			one.MaxMultiple = 1
			one.BaseSeparation = cfg.BaseSeparation * mult
			var diskMS float64
			for i := 0; i < b.N; i++ {
				rows, err := bench.Fig12(one, 1)
				if err != nil {
					b.Fatal(err)
				}
				diskMS = rows[0].DiskMS
			}
			b.ReportMetric(diskMS, "disk_ms/op")
		})
	}
}

// --- Fig. 13: query time vs. varying members in scope (§6.3) ---

func BenchmarkFig13Members(b *testing.B) {
	w := benchWorkforce(b)
	e := newBenchEngine(b)
	ps := []int{0, 3, 6, 9}
	for _, n := range []int{50, 100, 150, 200, 250} {
		b.Run(subK(n), func(b *testing.B) {
			var inst int
			for i := 0; i < b.N; i++ {
				v, err := e.ExecPerspective(core.PerspectiveQuery{
					Members: w.Changing[:n], Perspectives: ps,
					Sem: perspective.Static, Mode: perspective.NonVisual,
				})
				if err != nil {
					b.Fatal(err)
				}
				inst = v.Stats.SourceInstances
			}
			b.ReportMetric(float64(inst), "instances")
		})
	}
}

// --- Parallel merge-group scan ---

func BenchmarkParallelScan(b *testing.B) {
	// The same dynamic-forward query at increasing scan-worker counts.
	// Speedup is bounded by the host's cores and by merge_groups (the
	// number of independently scannable schedule partitions).
	w := benchWorkforce(b)
	e := newBenchEngine(b)
	q := core.PerspectiveQuery{
		Members: w.Changing, Perspectives: []int{0, 3, 6, 9},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(subK(workers), func(b *testing.B) {
			var groups int
			for i := 0; i < b.N; i++ {
				v, err := e.ExecPerspectiveWith(core.ExecContext{Workers: workers}, q)
				if err != nil {
					b.Fatal(err)
				}
				groups = v.Stats.MergeGroups
			}
			b.ReportMetric(float64(groups), "merge_groups")
		})
	}
}

// --- Relocation kernel: overlay write path ---

// BenchmarkRelocationKernel replays one query's relocation stream into
// each overlay write path: the legacy string-keyed cube.MemStore (one
// address-key allocation per relocated cell) against the chunk-native
// chunk.Overlay (integer (chunkID, offset) arithmetic, allocation-free
// once destination chunks exist). Divide allocs/op by cells/op for the
// per-cell figure recorded in BENCH_overlay_kernel.json.
func BenchmarkRelocationKernelMemStore(b *testing.B) {
	k, err := bench.NewKernel(benchWorkforce(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var cells int
	for i := 0; i < b.N; i++ {
		cells = k.RunMemStore()
	}
	b.ReportMetric(float64(cells), "cells/op")
}

func BenchmarkRelocationKernelChunkNative(b *testing.B) {
	k, err := bench.NewKernel(benchWorkforce(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var cells int
	for i := 0; i < b.N; i++ {
		cells = k.RunChunkNative()
	}
	b.ReportMetric(float64(cells), "cells/op")
}

// --- Trace overhead ---

// BenchmarkTraceOff bounds what the disabled trace hooks cost on the
// relocation hot path: the steady-state chunk-native replay with the
// engine's per-chunk span instrumentation compiled in but a nil
// recorder. Must show 0 allocs/op and stay within 2% of
// BenchmarkRelocationKernelSteady (the same replay without any hooks);
// BENCH_trace_overhead.json records both.
func BenchmarkTraceOff(b *testing.B) {
	k, err := bench.NewKernel(benchWorkforce(b))
	if err != nil {
		b.Fatal(err)
	}
	ov := k.NewOverlay()
	k.ReplayTraced(nil, trace.SpanRef{}, ov) // warm destination chunks
	b.ReportAllocs()
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		cells = k.ReplayTraced(nil, trace.SpanRef{}, ov)
	}
	b.ReportMetric(float64(cells), "cells/op")
}

// BenchmarkTraceOn is the same replay with a live recorder: the span
// per source chunk is claimed with one atomic add and two monotonic
// clock reads, still allocation-free (the buffer is preallocated).
func BenchmarkTraceOn(b *testing.B) {
	k, err := bench.NewKernel(benchWorkforce(b))
	if err != nil {
		b.Fatal(err)
	}
	ov := k.NewOverlay()
	tr := trace.New(8192)
	k.ReplayTraced(tr, trace.SpanRef{}, ov)
	b.ReportAllocs()
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		tr.Reset()
		root := tr.Start(trace.SpanRef{}, "replay")
		cells = k.ReplayTraced(tr, root, ov)
		root.End()
	}
	b.ReportMetric(float64(cells), "cells/op")
}

// BenchmarkRelocationKernelSteady is the untraced steady-state baseline
// BenchmarkTraceOff is measured against.
func BenchmarkRelocationKernelSteady(b *testing.B) {
	k, err := bench.NewKernel(benchWorkforce(b))
	if err != nil {
		b.Fatal(err)
	}
	ov := k.NewOverlay()
	k.Replay(ov)
	b.ReportAllocs()
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		cells = k.Replay(ov)
	}
	b.ReportMetric(float64(cells), "cells/op")
}

// --- Observability overhead ---

// BenchmarkObsRetainOff bounds what the per-query retention decision
// costs when tail-sampling is disabled (nil ring): the traced
// steady-state replay plus one MaybeRetain call on its spans. Must show
// 0 allocs/op and stay within 2% of BenchmarkTraceOn;
// BENCH_obs_overhead.json records both.
func BenchmarkObsRetainOff(b *testing.B) {
	k, err := bench.NewKernel(benchWorkforce(b))
	if err != nil {
		b.Fatal(err)
	}
	ov := k.NewOverlay()
	tr := trace.New(8192)
	k.ReplayTraced(tr, trace.SpanRef{}, ov)
	var ring *obs.TraceRing
	meta := obs.TraceMeta{Cube: "wf", Query: "bench", LatencyMs: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		tr.Reset()
		root := tr.Start(trace.SpanRef{}, "replay")
		cells = k.ReplayTraced(tr, root, ov)
		root.End()
		ring.MaybeRetain(meta, tr.Spans)
	}
	b.ReportMetric(float64(cells), "cells/op")
}

// BenchmarkObsRetainOn is the same replay against a live 4MiB ring at
// the server's default 1-in-64 sampling: most iterations take the
// atomic-reject path, one in 64 snapshots its spans into the ring.
func BenchmarkObsRetainOn(b *testing.B) {
	k, err := bench.NewKernel(benchWorkforce(b))
	if err != nil {
		b.Fatal(err)
	}
	ov := k.NewOverlay()
	tr := trace.New(8192)
	k.ReplayTraced(tr, trace.SpanRef{}, ov)
	ring := obs.NewTraceRing(4<<20, 64)
	meta := obs.TraceMeta{Cube: "wf", Query: "bench", LatencyMs: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var cells int
	for i := 0; i < b.N; i++ {
		tr.Reset()
		root := tr.Start(trace.SpanRef{}, "replay")
		cells = k.ReplayTraced(tr, root, ov)
		root.End()
		ring.MaybeRetain(meta, tr.Spans)
	}
	b.ReportMetric(float64(cells), "cells/op")
}

// --- Ablations ---

func BenchmarkAblationPebbling(b *testing.B) {
	w := benchWorkforce(b)
	for _, order := range []core.ReadOrder{core.OrderPebbling, core.OrderVaryingFirst,
		core.OrderVaryingLast, core.OrderCanonical} {
		b.Run(order.String(), func(b *testing.B) {
			e := newBenchEngine(b)
			e.SetReadOrder(order)
			disk := simdisk.MustNew(simdisk.DefaultModel())
			e.AttachDisk(disk)
			var peak int
			var diskMS float64
			for i := 0; i < b.N; i++ {
				disk.Reset()
				v, err := e.ExecPerspective(core.PerspectiveQuery{
					Members: w.Changing, Perspectives: []int{0, 6},
					Sem: perspective.Forward, Mode: perspective.NonVisual,
				})
				if err != nil {
					b.Fatal(err)
				}
				peak = v.Stats.PeakResidentChunks
				diskMS = v.Stats.DiskCostMs
			}
			b.ReportMetric(float64(peak), "peak_chunks")
			b.ReportMetric(diskMS, "disk_ms/op")
		})
	}
}

func BenchmarkAblationMode(b *testing.B) {
	// Visual mode re-aggregates quarter cells over the perspective
	// cube; non-visual reads the input scope. The benchmark times the
	// evaluation of all quarter-level aggregates for 20 changing
	// employees.
	w := benchWorkforce(b)
	for _, mode := range []perspective.Mode{perspective.NonVisual, perspective.Visual} {
		b.Run(mode.String(), func(b *testing.B) {
			e := newBenchEngine(b)
			v, err := e.ExecPerspective(core.PerspectiveQuery{
				Members: w.Changing[:20], Perspectives: []int{0, 6},
				Sem: perspective.Forward, Mode: mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			dept := w.Cube.DimByName(workload.DimDepartment)
			period := w.Cube.DimByName(workload.DimPeriod)
			quarters := period.LevelMembers(1)
			tuple := make([]dimension.MemberID, w.Cube.NumDims())
			for i := range tuple {
				tuple[i] = w.Cube.Dim(i).Leaf(0).ID
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, name := range w.Changing[:20] {
					for _, instID := range dept.Instances(name) {
						for _, q := range quarters {
							tuple[0] = instID
							tuple[1] = q
							if _, err := v.Cell(tuple); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
			}
		})
	}
}

func BenchmarkAblationChunkRep(b *testing.B) {
	w := benchWorkforce(b)
	for _, compress := range []bool{false, true} {
		name := "auto"
		if compress {
			name = "compressed"
		}
		b.Run(name, func(b *testing.B) {
			c := w.Cube
			if compress {
				c = w.Cube.Clone()
				// CompressAll is on the concrete chunk store.
				type compressor interface{ ForceSparseAll() int }
				c.Store().(compressor).ForceSparseAll()
			}
			e, err := core.New(c, workload.DimDepartment)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.ExecPerspective(core.PerspectiveQuery{
					Members: w.Changing, Perspectives: []int{0, 6},
					Sem: perspective.Forward, Mode: perspective.NonVisual,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationCompression(b *testing.B) {
	// Materialized overlay vs. relocation-mapping representation of the
	// perspective cube (§8 future work).
	w := benchWorkforce(b)
	e := newBenchEngine(b)
	q := core.PerspectiveQuery{
		Members: w.Changing, Perspectives: []int{0, 6},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	}
	b.Run("materialized", func(b *testing.B) {
		var bytes int
		for i := 0; i < b.N; i++ {
			v, err := e.ExecPerspective(q)
			if err != nil {
				b.Fatal(err)
			}
			bytes = v.Stats.CellsRelocated * (4*w.Cube.NumDims() + 8)
		}
		b.ReportMetric(float64(bytes), "repr_bytes")
	})
	b.Run("compressed", func(b *testing.B) {
		var bytes int
		for i := 0; i < b.N; i++ {
			v, err := e.ExecPerspectiveCompressed(q)
			if err != nil {
				b.Fatal(err)
			}
			bytes = v.Stats.CompressedBytes
		}
		b.ReportMetric(float64(bytes), "repr_bytes")
	})
}

// --- Supporting micro-benchmarks ---

func BenchmarkEngineFig4PaperCube(b *testing.B) {
	// The paper's tiny example cube end to end: a sanity baseline.
	w := benchWorkforce(b)
	_ = w
	e := newBenchEngine(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecPerspective(core.PerspectiveQuery{
			Members: wf.Changing[:1], Perspectives: []int{1, 3},
			Sem: perspective.Forward, Mode: perspective.Visual,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func subK(k int) string {
	const digits = "0123456789"
	if k == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = digits[k%10]
		k /= 10
	}
	return string(buf[i:])
}

// --- Run-encoded scan: run kernel vs per-cell relocation ---

var (
	rleOnce sync.Once
	rleWf   *workload.Workforce
	rleErr  error
)

// rleBenchWorkforce builds the validity-window cube shape of the RLE
// figure — flat months (constant value across each instance's validity
// window) and a period-fastest chunk layout — at benchmark scale.
func rleBenchWorkforce(b *testing.B) *workload.Workforce {
	b.Helper()
	rleOnce.Do(func() {
		cfg := benchConfig()
		cfg.FlatMonths = true
		cfg.ChunkDims = []int{64, 12, 1, 1, 1, 1, 1}
		rleWf, rleErr = workload.NewWorkforce(cfg)
	})
	if rleErr != nil {
		b.Fatal(rleErr)
	}
	return rleWf
}

// BenchmarkRleScan runs the same serial forward query over the cube
// stored per-cell (auto dense/sparse) and run-encoded. Only the
// run-encoded variant takes the run-aware kernel; store_bytes and
// cells_relocated are reported per variant, scan throughput is the
// cells_relocated over the scan stage captured in BENCH_rle_scan.json.
func BenchmarkRleScan(b *testing.B) {
	w := rleBenchWorkforce(b)
	variants := []struct {
		name   string
		encode bool
	}{{"per-cell", false}, {"run-encoded", true}}
	for _, va := range variants {
		b.Run(va.name, func(b *testing.B) {
			c := w.Cube.Clone()
			st := c.Store().(*chunk.Store)
			if va.encode {
				if n := st.EncodeRunsAll(); n == 0 {
					b.Fatal("nothing run-encoded")
				}
			}
			e, err := core.New(c, workload.DimDepartment)
			if err != nil {
				b.Fatal(err)
			}
			q := core.PerspectiveQuery{
				Members: w.Changing, Perspectives: []int{0, 3, 6, 9},
				Sem: perspective.Forward, Mode: perspective.NonVisual,
			}
			var cells int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := e.ExecPerspective(q)
				if err != nil {
					b.Fatal(err)
				}
				cells = v.Stats.CellsRelocated
			}
			b.ReportMetric(float64(cells), "cells_relocated")
			b.ReportMetric(float64(st.MemBytes()), "store_bytes")
		})
	}
}
