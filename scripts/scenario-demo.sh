#!/bin/sh
# scenario-demo.sh — a curl session against an ephemeral whatifd showing
# the scenario-workspace lifecycle: create → edit (hypothetical member +
# cell writes) → query → fork → diff → commit. Run via `make
# scenario-demo`; needs curl and jq on PATH.
set -eu

PORT="${SCENARIO_DEMO_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="${TMPDIR:-/tmp}/whatifd.demo.$$"
DATA_DIR=$(mktemp -d "${TMPDIR:-/tmp}/whatifd.demo.data.XXXXXX")

say() { printf '\n== %s\n' "$*"; }

# Cleanup runs on EVERY exit path — normal completion, set -e failures,
# and signals — so a half-finished demo never leaves a stray daemon, a
# built binary, or the ephemeral data directory behind. Installed
# before the daemon starts: a failure between spawn and the old
# post-spawn trap used to orphan the process.
PID=""
cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -f "$BIN"
    rm -rf "$DATA_DIR"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/whatifd
"$BIN" -workforce -addr "127.0.0.1:$PORT" -data-dir "$DATA_DIR" &
PID=$!

# Wait for the daemon to come up.
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "scenario-demo: whatifd did not start" >&2; exit 1; }
    sleep 0.1
done

QUERY='SELECT {[Account].[AllAccounts]} ON COLUMNS, {[Department].[Dept00/Emp00000]} ON ROWS FROM [App].[Db] WHERE ([Period].[Jan], [Scenario].[Current], [Currency].[Local], [Version].[BU Version_1], [ValueType].[HSP_InputValue])'

say "catalog before"
curl -fsS "$BASE/cubes" | jq .

say "create scenario 'promo' on cube workforce"
SID=$(curl -fsS -X POST "$BASE/scenarios" \
    -d '{"name": "promo", "cube": "workforce"}' | jq -r .id)
echo "scenario id: $SID"

say "edit: hypothetical account 'Bonus' + a cell write under it"
curl -fsS -X POST "$BASE/scenarios/$SID/edit" -d '{"edits": [
    {"op": "new_member", "dim": "Account", "parent": "AllAccounts", "name": "Bonus"},
    {"op": "set", "cell": {"Department": "Dept00/Emp00000", "Period": "Jan", "Account": "AllAccounts/Bonus"}, "value": 500}
]}' | jq .

say "query the layered view (AllAccounts rolls the bonus up)"
curl -fsS -X POST "$BASE/scenarios/$SID/query" \
    -d "$(jq -n --arg q "$QUERY" '{query: $q}')" | jq '{scenario, scenario_revision, values}'

say "fork (O(1): shares the parent's sealed layers)"
FID=$(curl -fsS -X POST "$BASE/scenarios/$SID/fork" \
    -d '{"name": "promo-big"}' | jq -r .id)
echo "fork id: $FID"

say "diff before divergence (empty)"
curl -fsS "$BASE/scenarios/$FID/diff?against=$SID" | jq .

say "edit the fork, then diff again (exactly the divergent cell)"
curl -fsS -X POST "$BASE/scenarios/$FID/edit" -d '{"edits": [
    {"op": "set", "cell": {"Department": "Dept00/Emp00000", "Period": "Jan", "Account": "AllAccounts/Bonus"}, "value": 900}
]}' >/dev/null
curl -fsS "$BASE/scenarios/$FID/diff?against=$SID" | jq .

say "commit the parent: publish as the cube's next catalog version"
curl -fsS -X POST "$BASE/scenarios/$SID/commit" | jq .

say "catalog after (workforce is now at the committed version)"
curl -fsS "$BASE/cubes" | jq .

say "storage: the committed version is written back to the data dir"
curl -fsS "$BASE/metrics" | jq '{writeback_pending}'
ls "$DATA_DIR"

say "discard the fork"
curl -fsS -X DELETE "$BASE/scenarios/$FID" -o /dev/null -w 'HTTP %{http_code}\n'

say "done"
