#!/bin/sh
# obs-demo.sh — a curl session against an ephemeral whatifd showing the
# continuous-observability layer: the /metrics/history time-series ring
# filling while queries run (cache hit ratio climbing as the result
# cache warms, scan amplification appearing), a slow query's retained
# span tree fetched back by the X-Trace-Id the response carried, and
# the structured lifecycle event log. Run via `make obs-demo`; needs
# curl and jq on PATH.
set -eu

PORT="${OBS_DEMO_PORT:-18081}"
BASE="http://127.0.0.1:$PORT"
BIN="${TMPDIR:-/tmp}/whatifd.obsdemo.$$"
DATA_DIR=$(mktemp -d "${TMPDIR:-/tmp}/whatifd.obsdemo.data.XXXXXX")

say() { printf '\n== %s\n' "$*"; }

# Cleanup runs on every exit path so a half-finished demo never leaves
# a stray daemon, a built binary, or the data directory behind.
PID=""
cleanup() {
    if [ -n "$PID" ]; then
        kill "$PID" 2>/dev/null || true
        wait "$PID" 2>/dev/null || true
    fi
    rm -f "$BIN"
    rm -rf "$DATA_DIR"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/whatifd

# Fast cadence (250ms samples) so a short demo spans many intervals;
# slowlog threshold at 1µs so every engine-evaluated query counts as
# slow and retains its trace (0 would mean "use the 250ms default").
"$BIN" -paper -addr "127.0.0.1:$PORT" -data-dir "$DATA_DIR" \
    -obs-interval 250ms -slowlog 0.001 &
PID=$!

i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "obs-demo: whatifd did not start" >&2; exit 1; }
    sleep 0.1
done

# query MONTH prints a what-if perspective query against the paper's
# Fig. 1/2 warehouse, taking MONTH as the perspective; distinct months
# are distinct result-cache keys, repeats are hits, and the perspective
# scan is what drives cells_scanned (and so scan amplification).
query() {
    jq -n --arg q "WITH PERSPECTIVE {($1)} FOR Organization DYNAMIC FORWARD VISUAL SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS, {[PTE].Children} ON ROWS FROM Warehouse WHERE ([Location].[NY], [Measures].[Salary])" '{query: $q}'
}

say "phase 1: all-miss traffic (eight distinct perspectives, each scans the cube)"
for m in Jan Feb Mar Apr May Jun Jul Aug; do
    curl -fsS -X POST "$BASE/query" -d "$(query "$m")" -o /dev/null
    sleep 0.1
done

say "phase 2: repeat traffic (same eight perspectives — the result cache answers)"
for m in Jan Feb Mar Apr May Jun Jul Aug; do
    curl -fsS -X POST "$BASE/query" -d "$(query "$m")" -o /dev/null
    sleep 0.1
done
sleep 0.3 # let the collector take one more sample

say "metrics history: hit ratio climbs, scan amplification fades as hits take over"
curl -fsS "$BASE/metrics/history" | jq '{interval_ms, total, series: [
    .samples[] | select(.queries > 0) |
    {queries, qps, cache_hit_ratio, scan_amplification, p95_ms}]}'

say "a fresh query's response carries its retained trace id"
TID=$(curl -fsS -X POST "$BASE/query" -d "$(query Sep)" \
    -o /dev/null -D - | tr -d '\r' | awk -F': ' 'tolower($1)=="x-trace-id"{print $2}')
echo "trace id: $TID"

say "fetch the span tree back at /debug/trace/$TID"
curl -fsS "$BASE/debug/trace/$TID" | jq '{id, reason, query, latency_ms, spans: (.spans | length)}'
curl -fsS "$BASE/debug/trace/$TID" | jq -r .rendered

say "the slowlog entry points at the same trace"
curl -fsS "$BASE/debug/slowlog" | jq '.queries[0] | {query, latency_ms, trace_id}'

say "retained-trace ring (newest first)"
curl -fsS "$BASE/debug/trace" | jq '{stats, newest: .traces[0]}'

say "structured lifecycle events (restore, listener, ...)"
curl -fsS "$BASE/debug/events" | jq '{total, recent: [.events[] | {type, fields}]}'

say "done — try 'go run ./cmd/whatif -top -addr $BASE' against a live daemon"
