#!/bin/sh
# Escape-hatch inventory for the whatiflint suite.
#
# Default mode lists every //lint: directive in the tree with its
# location and reason, then a per-rule count — the reviewable record of
# where the lint gate has been waived and why. With --check it only
# enforces the contract: markers (hotpath, monotonic) declare analyzer
# scope and need no reason, justification directives (coldfmt,
# hotpathok, semdefault, ctxok, lockok, wallclock, allocok, pairok,
# atomicok) suppress a diagnostic and must say why; any reasonless
# justification fails the script. verify.sh runs the --check mode.
#
# vendor/ and testdata/ are excluded (testdata deliberately contains
# bare directives to test the "needs a reason" diagnostics), as are
# internal/lint's own sources, whose doc comments and diagnostic
# strings quote directive syntax.
set -eu
cd "$(dirname "$0")/.."

mode="${1:-list}"

find . -name '*.go' \
    ! -path './vendor/*' ! -path '*/testdata/*' ! -path './internal/lint/*' \
    -exec grep -Hn '//lint:' {} + \
| awk -v mode="$mode" '
    BEGIN {
        n = split("coldfmt hotpathok semdefault ctxok lockok wallclock allocok pairok atomicok", j, " ")
        for (i = 1; i <= n; i++) just[j[i]] = 1
    }
    {
        split($0, p, ":")
        loc = substr(p[1], 3) ":" p[2]
        d = substr($0, index($0, "//lint:") + 7)
        rule = d
        sub(/[^a-z].*/, "", rule)
        reason = substr(d, length(rule) + 1)
        gsub(/^[ \t]+|[ \t\r]+$/, "", reason)
        count[rule]++
        if (mode != "--check") printf "%-11s %-34s %s\n", rule, loc, reason
        if (just[rule] && reason == "") {
            bad++
            printf "lint-stats: reasonless //lint:%s at %s\n", rule, loc
        }
    }
    END {
        if (mode != "--check") {
            print ""
            for (r in count) printf "%4d  //lint:%s\n", count[r], r
        }
        if (bad > 0) {
            printf "lint-stats: %d justification directive(s) without a reason\n", bad
            exit 1
        }
    }
'
