package olap_test

import (
	"fmt"

	olap "whatifolap"
)

// ExampleQuery reproduces the paper's Fig. 4 headline cell: under a
// forward perspective at {Feb, Apr}, (PTE/Joe, Mar) inherits the salary
// Joe earned as a contractor in March.
func ExampleQuery() {
	c := olap.PaperWarehouse()
	grid, err := olap.Query(c, `
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {[Time].[Qtr1].[Mar], [Time].[Qtr1]} ON COLUMNS,
       {[PTE].[Joe]} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("Mar=%g Qtr1=%g\n", grid.Values[0][0], grid.Values[0][1])
	// Output: Mar=30 Qtr1=40
}

// ExampleApplyPerspectives runs the same scenario through the algebra
// API and evaluates an aggregate in both modes.
func ExampleApplyPerspectives() {
	c := olap.PaperWarehouse()
	out, err := olap.ApplyPerspectives(c, "Organization", olap.Forward, []int{1, 3}) // Feb, Apr
	if err != nil {
		fmt.Println(err)
		return
	}
	ids := []olap.MemberID{
		out.DimByName("Organization").MustLookup("PTE/Joe"),
		out.DimByName("Location").MustLookup("NY"),
		out.DimByName("Time").MustLookup("Qtr1"),
		out.DimByName("Measures").MustLookup("Salary"),
	}
	visual, _ := olap.CellValue(c, out, ids, olap.Visual)
	nonVisual, _ := olap.CellValue(c, out, ids, olap.NonVisual)
	fmt.Printf("visual=%g non-visual=%g\n", visual, nonVisual)
	// Output: visual=40 non-visual=10
}

// ExampleApplyChanges hypothetically reclassifies Lisa from FTE to PTE
// in April (a positive scenario) and reads the moved cell.
func ExampleApplyChanges() {
	c := olap.PaperWarehouse()
	out, err := olap.ApplyChanges(c, "Organization", []olap.Change{
		{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: 3}, // April
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	org := out.DimByName("Organization")
	ids := []olap.MemberID{
		org.MustLookup("PTE/Lisa"),
		out.DimByName("Location").MustLookup("NY"),
		out.DimByName("Time").MustLookup("May"),
		out.DimByName("Measures").MustLookup("Salary"),
	}
	fmt.Printf("PTE/Lisa in May: %g\n", out.Value(ids))
	// Output: PTE/Lisa in May: 10
}

// ExampleApplyTransfer runs the paper's data-driven scenario: 10% of
// PTE salaries in NY during Q1 go to MA instead.
func ExampleApplyTransfer() {
	c := olap.PaperWarehouse()
	out, err := olap.ApplyTransfer(c, olap.Transfer{
		Dim: "Location", From: "NY", To: "MA", Fraction: 0.10,
		Scope: []olap.ScopeCond{
			{Dim: "Organization", Member: "PTE"},
			{Dim: "Time", Member: "Qtr1"},
			{Dim: "Measures", Member: "Salary"},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	ids := []olap.MemberID{
		out.DimByName("Organization").MustLookup("PTE/Tom"),
		out.DimByName("Location").MustLookup("MA"),
		out.DimByName("Time").MustLookup("Jan"),
		out.DimByName("Measures").MustLookup("Salary"),
	}
	fmt.Printf("Tom's reallocated MA salary in Jan: %g\n", out.Value(ids))
	// Output: Tom's reallocated MA salary in Jan: 1
}
