package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"golang.org/x/tools/go/analysis"

	"whatifolap/internal/lint/driver"
)

// TestJSONRoundTrip encodes driver diagnostics the way -json does and
// decodes them back, pinning the wire shape (file/line/col/analyzer/
// message) that CI and editor integrations parse.
func TestJSONRoundTrip(t *testing.T) {
	srcRoot := filepath.Join(t.TempDir(), "src")
	pkgDir := filepath.Join(srcRoot, "jx")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package jx\n\nfunc f() int {\n\treturn 1\n}\n"
	if err := os.WriteFile(filepath.Join(pkgDir, "jx.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	// A tiny analyzer with a deterministic diagnostic keeps the test
	// independent of the real rules' configuration.
	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "reports one diagnostic per package for wire-format testing",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			pass.Reportf(pass.Files[0].Package, "probe diagnostic")
			return nil, nil
		},
	}

	l := driver.NewTestdata(srcRoot)
	if _, err := l.Load("jx"); err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(l.Fset, l.Order(), []*analysis.Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}

	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		out = append(out, jsonDiag{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer.Name,
			Message:  d.Message,
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}

	var back []jsonDiag
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decoding -json output: %v", err)
	}
	if len(back) != 1 {
		t.Fatalf("decoded %d records, want 1", len(back))
	}
	got := back[0]
	wantPos := l.Fset.Position(diags[0].Pos)
	if got.File != wantPos.Filename || got.Line != wantPos.Line || got.Col != wantPos.Column {
		t.Fatalf("position mismatch: got %s:%d:%d, want %s:%d:%d",
			got.File, got.Line, got.Col, wantPos.Filename, wantPos.Line, wantPos.Column)
	}
	if got.Analyzer != "probe" || got.Message != "probe diagnostic" {
		t.Fatalf("payload mismatch: %+v", got)
	}
	if got.Line != 1 || got.File == "" {
		t.Fatalf("diagnostic should anchor at the package clause: %+v", got)
	}
}
