// Command whatiflint runs the engine's go/analysis suite
// (internal/lint): hotpathfmt, semexhaustive, ctxflow, lockguard,
// monotonic, allocguard, releasepair and atomicfield.
//
// It speaks two protocols:
//
//   - As a vet tool: `go vet -vettool=$(which whatiflint) ./...`. The
//     go command invokes the binary once per package with a *.cfg file
//     (and once with -V=full for the version handshake); both are
//     delegated to unitchecker. This is the production gate wired into
//     verify.sh and `make lint`.
//
//   - Standalone: `whatiflint [-dir root] [-fix] [-json] [packages...]`.
//     The offline driver loads the module (vendored deps included)
//     without go/packages and runs the same analyzers. -fix applies
//     the safe suggested fixes (monotonic's Round(0)/Truncate(0)
//     strips, releasepair's release-before-return inserts). -json
//     writes machine-readable diagnostics (file/line/col/analyzer/
//     message) to stdout for CI and editor integration. Analyzer flags
//     use vet's namespacing, e.g. -hotpathfmt.files=...
//     -semexhaustive.enums=....
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"whatifolap/internal/lint"
	"whatifolap/internal/lint/driver"
)

func main() {
	// go vet's invocation shapes: the -V=full handshake, a -flags
	// capability probe, then one *.cfg per package. Anything else is
	// standalone mode.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" || arg == "-flags" || arg == "--flags" ||
			strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(lint.Analyzers()...) // never returns
		}
	}
	os.Exit(standalone())
}

// jsonDiag is one -json output record.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func standalone() int {
	fix := flag.Bool("fix", false, "apply safe suggested fixes in place")
	jsonOut := flag.Bool("json", false, "write diagnostics as a JSON array on stdout")
	dir := flag.String("dir", ".", "module root to analyze")
	analyzers := lint.Analyzers()
	for _, a := range analyzers {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	flag.Parse()

	l, err := driver.New(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatiflint:", err)
		return 2
	}
	paths := flag.Args()
	if len(paths) == 0 {
		paths, err = modulePackages(l)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whatiflint:", err)
			return 2
		}
	}
	for _, p := range paths {
		if _, err := l.Load(p); err != nil {
			fmt.Fprintln(os.Stderr, "whatiflint:", err)
			return 2
		}
	}

	diags, err := driver.Run(l.Fset, l.Order(), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatiflint:", err)
		return 2
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			pos := l.Fset.Position(d.Pos)
			out = append(out, jsonDiag{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer.Name,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "whatiflint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Position(l.Fset), d.Message, d.Analyzer.Name)
		}
	}
	if *fix {
		n, err := driver.ApplyFixes(l.Fset, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whatiflint: applying fixes:", err)
			return 2
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "whatiflint: applied %d fixes; re-run to confirm\n", n)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// modulePackages walks the module for directories with buildable Go
// files, skipping vendor/, testdata/ and hidden trees.
func modulePackages(l *driver.Loader) ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != l.ModuleDir {
			name := d.Name()
			if name == "vendor" || name == "testdata" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return fs.SkipDir
			}
		}
		if !dirHasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
		} else {
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}

func dirHasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
