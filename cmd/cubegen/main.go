// Command cubegen generates the benchmark and example datasets and
// writes them in the dump format cmd/whatif loads.
//
// Examples:
//
//	cubegen -kind workforce -out wf.dump
//	cubegen -kind workforce -employees 20250 -accounts 100 -scenarios 5 -out paper.dump
//	cubegen -kind retail-time -out retail.dump
//	cubegen -kind retail-market -out bundles.dump
package main

import (
	"flag"
	"fmt"
	"os"

	olap "whatifolap"
	"whatifolap/internal/workload"
)

func main() {
	var (
		kind      = flag.String("kind", "workforce", "dataset: workforce, retail-time or retail-market")
		out       = flag.String("out", "", "output file (default stdout)")
		format    = flag.String("format", "text", "output format: text (auditable) or binary (compact, chunked cubes only)")
		employees = flag.Int("employees", 0, "workforce: total employees (0 = default)")
		depts     = flag.Int("departments", 0, "workforce: departments")
		changing  = flag.Int("changing", 0, "workforce: changing employees")
		months    = flag.Int("months", 0, "months / time extent")
		accounts  = flag.Int("accounts", 0, "workforce: leaf accounts")
		scenarios = flag.Int("scenarios", 0, "workforce: scenarios")
		seed      = flag.Int64("seed", 0, "generator seed (0 = default)")
	)
	flag.Parse()

	var c *olap.Cube
	var err error
	switch *kind {
	case "workforce":
		cfg := olap.WorkforceDefault()
		override(&cfg.Employees, *employees)
		override(&cfg.Departments, *depts)
		override(&cfg.ChangingEmployees, *changing)
		override(&cfg.Months, *months)
		override(&cfg.Accounts, *accounts)
		override(&cfg.Scenarios, *scenarios)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		var w *olap.Workforce
		w, err = olap.NewWorkforce(cfg)
		if err == nil {
			c = w.Cube
			fmt.Fprintf(os.Stderr, "cubegen: workforce %d employees / %d departments / %d changing, %d cells\n",
				cfg.Employees, cfg.Departments, cfg.ChangingEmployees, c.NumCells())
		}
	case "retail-time", "retail-market":
		cfg := olap.RetailDefault()
		override(&cfg.Months, *months)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		var rt *olap.Retail
		if *kind == "retail-time" {
			rt, err = olap.NewRetailByTime(cfg)
		} else {
			rt, err = olap.NewRetailByMarket(cfg)
		}
		if err == nil {
			c = rt.Cube
			fmt.Fprintf(os.Stderr, "cubegen: %s, %d cells, moving products %v\n", *kind, c.NumCells(), rt.Moving)
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cubegen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cubegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		err = workload.Save(c, w)
	case "binary":
		err = workload.SaveBinary(c, w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cubegen:", err)
		os.Exit(1)
	}
}

func override(dst *int, v int) {
	if v > 0 {
		*dst = v
	}
}
