// Crash-recovery round trip against the real daemon binary: start
// whatifd with -paper and a data directory, commit a scenario (the
// catalog moves to version 2 and writes back a segment), kill the
// process with SIGKILL — no shutdown hook runs — and restart on the
// data directory alone. The restored catalog must serve the committed
// version with the edited cells, without any -paper/-load re-ingest.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// startDaemon launches the built binary and waits for /healthz.
func startDaemon(t *testing.T, bin string, port int, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", fmt.Sprintf("127.0.0.1:%d", port)}, args...)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("whatifd did not become healthy")
	return nil
}

// postJSON POSTs a JSON body and decodes the JSON response into out.
func postJSON(t *testing.T, url string, body interface{}, out interface{}) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("POST %s = %d: %s", url, resp.StatusCode, msg.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func getJSON(t *testing.T, url string, out interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

type gridJSON struct {
	Version int64        `json:"version"`
	Values  [][]*float64 `json:"values"`
}

// oneCell extracts the single data cell of a 1×1 grid response.
func oneCell(t *testing.T, g gridJSON) float64 {
	t.Helper()
	if len(g.Values) != 1 || len(g.Values[0]) != 1 || g.Values[0][0] == nil {
		t.Fatalf("expected a 1×1 non-null grid, got %+v", g.Values)
	}
	return *g.Values[0][0]
}

// fteJanQuery reads the FTE salary rollup for January in NY.
const fteJanQuery = `SELECT {[Time].[Jan]} ON COLUMNS, {[FTE]} ON ROWS
FROM Warehouse WHERE ([Location].[NY], [Measures].[Salary])`

func TestWhatifdKill9RestartRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and restarts the daemon binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "whatifd.test.bin")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")

	port := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	cmd := startDaemon(t, bin, port, "-paper", "-data-dir", dataDir)

	// Baseline: FTE Jan NY salary is Joe 10 + Lisa 10.
	var g gridJSON
	postJSON(t, base+"/query", map[string]interface{}{"cube": "paper", "query": fteJanQuery}, &g)
	if g.Version != 1 || oneCell(t, g) != 20 {
		t.Fatalf("baseline: version %d cell %v, want v1 cell 20", g.Version, oneCell(t, g))
	}

	// Commit a scenario: raise Lisa's January salary. The catalog moves
	// to version 2 and the persister writes the segment back.
	var sc struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/scenarios", map[string]string{"name": "raise", "cube": "paper"}, &sc)
	postJSON(t, base+"/scenarios/"+sc.ID+"/edit", map[string]interface{}{
		"edits": []map[string]interface{}{
			{"op": "set", "cell": map[string]string{
				"Organization": "FTE/Lisa", "Location": "NY", "Time": "Jan", "Measures": "Salary",
			}, "value": 77},
		},
	}, nil)
	var committed struct {
		Version int64 `json:"version"`
	}
	postJSON(t, base+"/scenarios/"+sc.ID+"/commit", nil, &committed)
	if committed.Version != 2 {
		t.Fatalf("commit version = %d, want 2", committed.Version)
	}

	// Wait for the asynchronous write-back queue to drain: after this
	// the segment files and manifest are durable on disk.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var m struct {
			WritebackPending int64 `json:"writeback_pending"`
		}
		getJSON(t, base+"/metrics", &m)
		if m.WritebackPending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write-back queue never drained (pending=%d)", m.WritebackPending)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Kill -9: no graceful shutdown, no flush hook.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart on the data directory alone — no -paper re-ingest.
	port2 := freePort(t)
	base2 := fmt.Sprintf("http://127.0.0.1:%d", port2)
	cmd2 := startDaemon(t, bin, port2, "-data-dir", dataDir)

	var cubes struct {
		Cubes []struct {
			Name    string `json:"name"`
			Version int64  `json:"version"`
		} `json:"cubes"`
	}
	getJSON(t, base2+"/cubes", &cubes)
	if len(cubes.Cubes) != 1 || cubes.Cubes[0].Name != "paper" || cubes.Cubes[0].Version != 2 {
		t.Fatalf("restored catalog = %+v, want paper at version 2", cubes.Cubes)
	}

	var g2 gridJSON
	postJSON(t, base2+"/query", map[string]interface{}{"cube": "paper", "query": fteJanQuery}, &g2)
	if g2.Version != 2 || oneCell(t, g2) != 10+77 {
		t.Fatalf("restored: version %d cell %v, want v2 cell 87", g2.Version, oneCell(t, g2))
	}

	cmd2.Process.Signal(syscall.SIGTERM)
	cmd2.Wait()
}

// TestWhatifdRleKill9Restart is the -rle variant of the kill -9 round
// trip: the daemon run-length encodes its cubes at startup, serves
// queries from run-encoded chunks, persists a committed scenario, dies
// without a flush hook, and the restarted daemon — which re-sweeps the
// restored store — answers with the committed values.
func TestWhatifdRleKill9Restart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and restarts the daemon binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "whatifd.test.bin")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")

	port := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	cmd := startDaemon(t, bin, port, "-paper", "-rle", "-data-dir", dataDir)

	var g gridJSON
	postJSON(t, base+"/query", map[string]interface{}{"cube": "paper", "query": fteJanQuery}, &g)
	if g.Version != 1 || oneCell(t, g) != 20 {
		t.Fatalf("baseline over run-encoded chunks: version %d cell %v, want v1 cell 20", g.Version, oneCell(t, g))
	}

	var sc struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/scenarios", map[string]string{"name": "raise", "cube": "paper"}, &sc)
	postJSON(t, base+"/scenarios/"+sc.ID+"/edit", map[string]interface{}{
		"edits": []map[string]interface{}{
			{"op": "set", "cell": map[string]string{
				"Organization": "FTE/Lisa", "Location": "NY", "Time": "Jan", "Measures": "Salary",
			}, "value": 42},
		},
	}, nil)
	var committed struct {
		Version int64 `json:"version"`
	}
	postJSON(t, base+"/scenarios/"+sc.ID+"/commit", nil, &committed)
	if committed.Version != 2 {
		t.Fatalf("commit version = %d, want 2", committed.Version)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var m struct {
			WritebackPending int64 `json:"writeback_pending"`
		}
		getJSON(t, base+"/metrics", &m)
		if m.WritebackPending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write-back queue never drained (pending=%d)", m.WritebackPending)
		}
		time.Sleep(50 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	port2 := freePort(t)
	base2 := fmt.Sprintf("http://127.0.0.1:%d", port2)
	cmd2 := startDaemon(t, bin, port2, "-rle", "-data-dir", dataDir)

	var g2 gridJSON
	postJSON(t, base2+"/query", map[string]interface{}{"cube": "paper", "query": fteJanQuery}, &g2)
	if g2.Version != 2 || oneCell(t, g2) != 10+42 {
		t.Fatalf("restored: version %d cell %v, want v2 cell 52", g2.Version, oneCell(t, g2))
	}

	cmd2.Process.Signal(syscall.SIGTERM)
	cmd2.Wait()
}
