// Command whatifd is the what-if OLAP query daemon: it loads one or
// more cubes into a catalog and serves concurrent extended-MDX queries
// over HTTP with admission control, per-query deadlines, a result
// cache, and metrics.
//
// Endpoints:
//
//	POST /query          {"cube": "wf", "query": "SELECT ...", "timeout_ms": 0}
//	GET  /cubes          catalog listing (name, version, dims, cells, in-flight)
//	GET  /metrics        counters, cache hit ratio, queue depth, p50/p95/p99
//	                     (?format=prom for Prometheus text exposition)
//	GET  /metrics/history  in-process metrics time-series (interval deltas)
//	GET  /debug/slowlog  recent slow queries with their span traces
//	GET  /debug/trace    retained trace summaries; /debug/trace/{id} one tree
//	GET  /debug/events   structured component lifecycle events
//	GET  /healthz        liveness
//
// Scenario workspaces (layered what-if sessions over a catalog cube):
//
//	POST   /scenarios                create: {"name": "...", "cube": "..."}
//	GET    /scenarios                list workspaces
//	POST   /scenarios/{id}/edit      apply an atomic edit batch: {"edits": [...]}
//	POST   /scenarios/{id}/fork      fork (shares the parent's layers)
//	POST   /scenarios/{id}/query     query the layered view (same body as /query)
//	GET    /scenarios/{id}/diff      cell diff against another: ?against={id2}
//	POST   /scenarios/{id}/commit    publish as the cube's next catalog version
//	DELETE /scenarios/{id}           discard the workspace
//
// With -debug-addr a second listener serves net/http/pprof at
// /debug/pprof/ — kept off the query port so profiling endpoints are
// never exposed where queries are.
//
// With -data-dir the daemon is persistent: every published cube version
// (initial registration, admin update, scenario commit) is written back
// to the directory as a checksummed segment file behind a crash-safe
// manifest, and a restart restores the catalog — version numbers
// included — without re-ingesting dumps. -mmap serves segment reads
// through a read-only memory map instead of pread.
//
// Cube sources mirror cmd/whatif: -paper, -workforce, and repeatable
// -load name=path flags accepting both dump formats of cmd/cubegen.
//
// Examples:
//
//	whatifd -workforce -addr :8080
//	curl -s localhost:8080/query -d '{"query": "SELECT {[Account].Levels(0).Members} ON COLUMNS FROM [Db]"}'
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: listeners close,
// in-flight queries drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // pprof handlers on http.DefaultServeMux, served via -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	olap "whatifolap"
	"whatifolap/internal/obs"
	"whatifolap/internal/server"
)

// loadFlags collects repeatable -load name=path values.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads loadFlags
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		paper       = flag.Bool("paper", false, "serve the paper's Fig. 1/2 example warehouse as cube \"paper\"")
		wf          = flag.Bool("workforce", false, "serve the default generated workforce dataset as cube \"workforce\"")
		workers     = flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
		scanWork    = flag.Int("scan-workers", 0, "scan workers per query (parallel merge-group scan; 0 or 1 = serial)")
		queueCap    = flag.Int("queue", 0, "admission queue capacity (0 = 4×workers); overflow returns 429")
		cacheBytes  = flag.Int("cache-bytes", server.DefaultCacheBytes, "result cache byte budget (0 disables)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-query deadline (0 = none)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
		slowMs      = flag.Float64("slowlog", server.DefaultSlowQueryMs, "slow-query log threshold in ms (negative disables)")
		slowCap     = flag.Int("slowlog-cap", 0, "slow-query ring buffer capacity (0 = default)")
		traceSpans  = flag.Int("trace-spans", 0, "span buffer size per traced query (0 = default)")
		dataDir     = flag.String("data-dir", "", "persistent data directory: restore cubes from it at startup and write published versions back as segment files (empty = in-memory only)")
		useMmap     = flag.Bool("mmap", false, "with -data-dir, serve segment reads through a read-only memory map instead of pread")
		rle         = flag.Bool("rle", true, "run-length encode eligible chunks of every served cube at startup (smaller resident set, run-aware scans)")
		obsEvery    = flag.Duration("obs-interval", 0, "metrics-history sampling cadence (0 = default 1s, negative disables)")
		historyCap  = flag.Int("history", 0, "metrics-history ring capacity in samples (0 = default)")
		retainBytes = flag.Int("retain-bytes", 0, "retained-trace ring byte budget (0 = default 4 MiB, negative disables)")
		traceSample = flag.Int("trace-sample", 0, "retain every Nth healthy query trace (0 = default 64, negative = slow/errored only)")
	)
	flag.Var(&loads, "load", "serve a cube dump as name=path (repeatable; text or binary format)")
	flag.Parse()

	// Component lifecycle goes through one structured event log: every
	// event is a JSON line on stderr and retained for /debug/events.
	events := obs.NewEventLog(0, os.Stderr)

	catalog := server.NewCatalog()
	restored := map[string]bool{}
	if *dataDir != "" {
		p, err := server.OpenPersister(*dataDir, *useMmap)
		if err != nil {
			fatal(err)
		}
		if p.Recovered() {
			events.Log("manifest_recovered", map[string]string{"dir": *dataDir})
		}
		names, err := p.Restore(catalog)
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			restored[n] = true
		}
		if len(names) > 0 {
			events.Log("restore", map[string]string{
				"dir":   *dataDir,
				"cubes": strings.Join(names, ","),
			})
		}
		// Attach after Restore: restored versions are already durable and
		// must not be rewritten; everything registered from here on is.
		catalog.SetPersister(p)
	}
	if *paper && !restored["paper"] {
		if err := catalog.Register("paper", olap.PaperWarehouseChunked()); err != nil {
			fatal(err)
		}
	}
	if *wf && !restored["workforce"] {
		w, err := olap.NewWorkforce(olap.WorkforceDefault())
		if err != nil {
			fatal(err)
		}
		if err := catalog.Register("workforce", w.Cube); err != nil {
			fatal(err)
		}
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fatal(fmt.Errorf("bad -load %q, want name=path", spec))
		}
		if restored[name] {
			continue
		}
		if err := catalog.LoadFile(name, path); err != nil {
			fatal(err)
		}
	}
	names := catalog.Names()
	if len(names) == 0 {
		fatal(errors.New("no cubes: pass -paper, -workforce, -load name=path, or -data-dir with restorable cubes"))
	}
	if *rle {
		// Sweep before serving: conversion is a representation change,
		// not a version change, so nothing is re-persisted — restored
		// segments already hold run records where they paid off.
		for _, name := range names {
			snap, err := catalog.Acquire(name)
			if err != nil {
				continue
			}
			if n, err := olap.EncodeRuns(snap.Cube); err == nil && n > 0 {
				events.Log("run_encode", map[string]string{
					"cube":   name,
					"chunks": fmt.Sprint(n),
				})
			}
			snap.Release()
		}
	}

	svc := server.New(catalog, server.Config{
		Workers:          *workers,
		ScanWorkers:      *scanWork,
		QueueCap:         *queueCap,
		CacheBytes:       *cacheBytes,
		DefaultTimeout:   *timeout,
		SlowQueryMs:      *slowMs,
		SlowlogCap:       *slowCap,
		TraceSpans:       *traceSpans,
		ObsInterval:      *obsEvery,
		HistoryCap:       *historyCap,
		RetainTraceBytes: *retainBytes,
		TraceSampleEvery: *traceSample,
		Events:           events,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	if *debugAddr != "" {
		// http.DefaultServeMux carries the pprof handlers registered by
		// the net/http/pprof import; it is deliberately NOT the query mux.
		dbg := &http.Server{Addr: *debugAddr, Handler: http.DefaultServeMux}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "whatifd: debug listener:", err)
			}
		}()
		events.Log("debug_listener", map[string]string{"addr": *debugAddr})
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	events.Log("serving", map[string]string{
		"addr":  *addr,
		"cubes": strings.Join(names, ","),
	})

	select {
	case <-ctx.Done():
		events.Log("shutdown", nil)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "whatifd: shutdown:", err)
		}
		svc.Close()
		if p := catalog.Persister(); p != nil {
			if err := p.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "whatifd:", err)
			}
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whatifd:", err)
	os.Exit(1)
}
