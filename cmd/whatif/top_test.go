package main

import (
	"strings"
	"testing"
	"time"

	"whatifolap/internal/obs"
	"whatifolap/internal/server"
)

func TestTopSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	// All-zero series stays at the baseline glyph.
	if got := sparkline([]float64{0, 0, 0}); got != "▁▁▁" {
		t.Fatalf("zero sparkline = %q", got)
	}
	// The maximum hits the tallest bar, zero the baseline.
	got := sparkline([]float64{0, 5, 10})
	runes := []rune(got)
	if len(runes) != 3 || runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("sparkline(0,5,10) = %q", got)
	}
}

func TestTopRenderHealthView(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

	// No samples yet: the view says so instead of plotting garbage.
	empty := renderTop("http://x:1", server.HistoryResponse{IntervalMs: 1000, Cap: 600}, now)
	if !strings.Contains(empty, "no samples yet") {
		t.Fatalf("empty view:\n%s", empty)
	}

	h := server.HistoryResponse{
		IntervalMs: 1000,
		Cap:        600,
		Total:      2,
		Samples: []obs.Sample{
			{QPS: 10, Queries: 10, CacheHitRatio: -1, ScanAmplification: -1, P95Ms: 4},
			{
				QPS: 120.5, Queries: 120, Errors: 2, SlowQueries: 1,
				CacheHits: 90, CacheMisses: 30, CacheHitRatio: 0.75,
				P50Ms: 1.5, P95Ms: 8.25, P99Ms: 20,
				CellsScanned: 5000, CellsReturned: 100, ScanAmplification: 50,
				QueueDepth: 3, CacheBytes: 2 << 20, WritebackPending: 1,
				PoolResidentBytes: 64 << 20, PoolResidentChunks: 12,
				RetainedTraces: 7, RetainedTraceBytes: 4096,
			},
		},
	}
	out := renderTop("http://localhost:8080", h, now)
	for _, want := range []string{
		"http://localhost:8080",
		"120.5",       // qps of the newest sample
		"75.0%",       // cache hit ratio
		"50.0x",       // scan amplification
		"p95 8.25ms",  // latency quantiles
		"64.0MiB",     // pool resident bytes
		"7 retained",  // trace ring occupancy
		"writeback 1", // write-back backlog
		"▁",           // sparklines rendered
		"█",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("view missing %q:\n%s", want, out)
		}
	}
	// The -1 sentinels plot as baseline, not as negative bars, and the
	// ratio column shows a placeholder rather than -100%.
	if strings.Contains(out, "-100") || strings.Contains(out, "-1.0") {
		t.Fatalf("sentinel leaked into view:\n%s", out)
	}
}
