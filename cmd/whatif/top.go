package main

// whatif -top: a live terminal health view over a running whatifd,
// built entirely from GET /metrics/history — the same interval samples
// any other consumer of the endpoint sees. Rendering is a pure
// function of one HistoryResponse so it can be unit-tested without a
// daemon.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"whatifolap/internal/obs"
	"whatifolap/internal/server"
)

// runTop polls base's /metrics/history every interval and repaints the
// terminal until interrupted. Transient fetch errors are shown in
// place of the dashboard and retried — a daemon restart should not
// kill the viewer.
func runTop(base string, every time.Duration, out io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		h, err := fetchHistory(ctx, client, base)
		fmt.Fprint(out, "\x1b[H\x1b[2J") // cursor home + clear screen
		if err != nil {
			fmt.Fprintf(out, "whatif -top: %s\n  %v\n  (retrying every %s)\n", base, err, every)
		} else {
			fmt.Fprint(out, renderTop(base, h, time.Now()))
		}
		select {
		case <-ctx.Done():
			fmt.Fprintln(out)
			return nil
		case <-tick.C:
		}
	}
}

func fetchHistory(ctx context.Context, client *http.Client, base string) (server.HistoryResponse, error) {
	var h server.HistoryResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics/history", nil)
	if err != nil {
		return h, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("GET /metrics/history: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("decoding /metrics/history: %w", err)
	}
	return h, nil
}

// topSparkWidth bounds the sparkline to the most recent samples so the
// view fits a terminal row.
const topSparkWidth = 60

// renderTop formats one dashboard frame from a history snapshot. Pure:
// no clock reads, no IO — now is the caller's.
func renderTop(base string, h server.HistoryResponse, now time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "whatif -top  %s  %s\n", base, now.Format("15:04:05"))
	if len(h.Samples) == 0 {
		fmt.Fprintf(&b, "  no samples yet (collector interval %.0fms, ring cap %d)\n", h.IntervalMs, h.Cap)
		return b.String()
	}
	last := h.Samples[len(h.Samples)-1]
	fmt.Fprintf(&b, "samples %d/%d (total %d), interval %.0fms\n\n",
		len(h.Samples), h.Cap, h.Total, h.IntervalMs)

	fmt.Fprintf(&b, "  qps      %8.1f   queries %6d   errors %5d   slow %5d\n",
		last.QPS, last.Queries, last.Errors, last.SlowQueries)
	fmt.Fprintf(&b, "  latency  p50 %.2fms  p95 %.2fms  p99 %.2fms\n",
		last.P50Ms, last.P95Ms, last.P99Ms)
	fmt.Fprintf(&b, "  cache    %s hit ratio   %d hits / %d misses   %s\n",
		ratioStr(last.CacheHitRatio), last.CacheHits, last.CacheMisses, byteStr(int64(last.CacheBytes)))
	fmt.Fprintf(&b, "  scan amp %s   %d scanned / %d returned cells\n",
		ampStr(last.ScanAmplification), last.CellsScanned, last.CellsReturned)
	fmt.Fprintf(&b, "  queue    %d deep   writeback %d pending   segment read %.2fms\n",
		last.QueueDepth, last.WritebackPending, last.SegmentReadMs)
	fmt.Fprintf(&b, "  pool     %s resident (%d chunks, %d spilled)   pinned %d   evictions %d   faults %d\n",
		byteStr(int64(last.PoolResidentBytes)), last.PoolResidentChunks, last.PoolSpilledChunks,
		last.PoolPinned, last.PoolEvictions, last.PoolFaults)
	fmt.Fprintf(&b, "  traces   %d retained, %s\n\n",
		last.RetainedTraces, byteStr(int64(last.RetainedTraceBytes)))

	spark := func(label string, pick func(obs.Sample) float64) {
		vals := make([]float64, 0, topSparkWidth)
		start := 0
		if len(h.Samples) > topSparkWidth {
			start = len(h.Samples) - topSparkWidth
		}
		for _, s := range h.Samples[start:] {
			vals = append(vals, pick(s))
		}
		fmt.Fprintf(&b, "  %-9s %s\n", label, sparkline(vals))
	}
	spark("qps", func(s obs.Sample) float64 { return s.QPS })
	spark("p95 ms", func(s obs.Sample) float64 { return s.P95Ms })
	spark("hit%", func(s obs.Sample) float64 { return max0(s.CacheHitRatio) })
	spark("scan amp", func(s obs.Sample) float64 { return max0(s.ScanAmplification) })
	return b.String()
}

// max0 clamps the -1 "no observations" sentinel to 0 for plotting.
func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func ratioStr(v float64) string {
	if v < 0 {
		return "   --"
	}
	return fmt.Sprintf("%5.1f", v*100) + "%"
}

// ampStr formats the scan-amplification ratio (cells scanned per cell
// returned); -1 means nothing was returned this interval.
func ampStr(v float64) string {
	if v < 0 {
		return "   --"
	}
	return fmt.Sprintf("%5.1fx", v)
}

func byteStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// sparkBars are the eight block glyphs a sparkline quantizes into.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

// sparkline plots values scaled to the series maximum; an all-zero (or
// empty) series renders as baseline bars.
func sparkline(vals []float64) string {
	var maxV float64
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if maxV > 0 && v > 0 {
			i = int(v / maxV * float64(len(sparkBars)-1))
			if i >= len(sparkBars) {
				i = len(sparkBars) - 1
			}
		}
		b.WriteRune(sparkBars[i])
	}
	return b.String()
}
