// Command whatif runs extended-MDX what-if queries against a cube.
//
// The cube comes from one of three sources: the paper's running example
// (-paper), a generated workforce dataset (-workforce), or a dump file
// written by cubegen (-load). Queries are read from -query, from files
// given as arguments, or interactively from stdin (one query per
// semicolon).
//
// Examples:
//
//	whatif -paper -query 'WITH PERSPECTIVE {(Feb),(Apr)} FOR Organization
//	    DYNAMIC FORWARD VISUAL
//	    SELECT {Descendants([Time],1,SELF_AND_AFTER)} ON COLUMNS,
//	           {[PTE].Children} ON ROWS
//	    FROM W WHERE ([Location].[NY],[Measures].[Salary])'
//
//	cubegen -kind workforce -out wf.dump
//	whatif -load wf.dump -chunked < queries.mdx
//
// With -top the command is instead a live health view over a running
// whatifd: it polls GET /metrics/history on -addr every -top-interval
// and repaints QPS, latency quantiles, cache hit ratio, scan
// amplification and buffer-pool pressure with sparklines.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	olap "whatifolap"
	"whatifolap/internal/mdx"
	"whatifolap/internal/trace"
	"whatifolap/internal/workload"
)

func main() {
	var (
		paper     = flag.Bool("paper", false, "use the paper's Fig. 1/2 example warehouse")
		wf        = flag.Bool("workforce", false, "generate the default workforce dataset")
		load      = flag.String("load", "", "load a cube dump written by cubegen")
		chunked   = flag.Bool("chunked", true, "back the cube with chunked storage (enables the engine)")
		query     = flag.String("query", "", "run a single query and exit")
		showStats = flag.Bool("stats", false, "print engine statistics after each query")
		explain   = flag.Bool("explain", false, "print the evaluation path and physical plan before each result")
		showTrace = flag.Bool("trace", false, "print the span tree of each query's execution")
		timeout   = flag.Duration("timeout", 0, "per-query deadline (e.g. 5s); 0 disables")
		workers   = flag.Int("workers", 1, "scan workers per query (parallel merge-group scan; 1 = serial)")
		scenFile  = flag.String("scenario", "", "apply a JSON scenario edit script before querying (array of edits or {\"edits\": [...]})")
		topMode   = flag.Bool("top", false, "live terminal health view over a running whatifd's /metrics/history")
		topAddr   = flag.String("addr", "http://127.0.0.1:8080", "daemon base URL for -top")
		topEvery  = flag.Duration("top-interval", time.Second, "refresh cadence for -top")
	)
	flag.Parse()

	if *topMode {
		if err := runTop(*topAddr, *topEvery, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "whatif:", err)
			os.Exit(1)
		}
		return
	}

	c, err := openCube(*paper, *wf, *load, *chunked)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}
	if *scenFile != "" {
		// Queries run against the scenario's layered view: base chunks
		// resolved through the edit layers, nothing copied.
		c, err = applyScenarioScript(c, *scenFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whatif:", err)
			os.Exit(1)
		}
	}
	ev := olap.NewEvaluator(c)

	run := func(src string) {
		src = strings.TrimSpace(src)
		if src == "" {
			return
		}
		q, err := mdx.Parse(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whatif:", err)
			return
		}
		// The deadline feeds the same cancellation mechanism the query
		// daemon uses: checked at chunk-iteration boundaries in the
		// engine and between grid rows.
		rc := olap.RunContext{Workers: *workers}
		if *timeout > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			defer cancel()
			rc.Ctx = ctx
		}
		// An EXPLAIN-prefixed query dispatches like in the daemon: plain
		// EXPLAIN plans without executing, EXPLAIN ANALYZE executes under
		// a span trace and prints the analysis with the result.
		if q.Explain && !q.Analyze {
			ex, err := ev.Explain(q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "whatif:", err)
				return
			}
			fmt.Print(ex)
			fmt.Println()
			return
		}
		if q.Explain {
			text, grid, _, err := ev.ExplainAnalyze(rc, q)
			if err != nil {
				fmt.Fprintln(os.Stderr, "whatif:", err)
				return
			}
			fmt.Print(grid)
			fmt.Print(text)
			fmt.Println()
			return
		}
		if *explain {
			if ex, err := ev.Explain(q); err == nil {
				fmt.Print(ex)
			}
		}
		var tr *trace.Trace
		var root trace.SpanRef
		if *showTrace {
			tr = trace.New(0)
			root = tr.Start(trace.SpanRef{}, "eval")
			base := rc.Ctx
			if base == nil {
				base = context.Background()
			}
			rc.Ctx = trace.WithSpan(trace.NewContext(base, tr), root)
		}
		grid, stats, err := ev.RunQueryStatsWith(rc, q)
		root.End()
		if err != nil {
			fmt.Fprintln(os.Stderr, "whatif:", err)
			return
		}
		fmt.Print(grid)
		if *showTrace {
			fmt.Print(tr.Render())
		}
		if *showStats {
			fmt.Printf("-- scope=%d members, instances=%d, chunks read=%d, cells relocated=%d, merge edges=%d, peak resident=%d\n",
				stats.MembersInScope, stats.SourceInstances, stats.ChunksRead,
				stats.CellsRelocated, stats.MergeEdges, stats.PeakResidentChunks)
			fmt.Printf("-- groups=%d, workers=%d, plan=%.2fms, scan=%.2fms, merge=%.2fms, project=%.2fms\n",
				stats.MergeGroups, stats.ScanWorkers,
				stats.PlanMs, stats.ScanMs, stats.MergeMs, stats.ProjectMs)
		}
		fmt.Println()
	}

	switch {
	case *query != "":
		run(*query)
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "whatif:", err)
				os.Exit(1)
			}
			for _, src := range strings.Split(string(data), ";") {
				run(src)
			}
		}
	default:
		repl(os.Stdin, run)
	}
}

// applyScenarioScript loads a JSON edit script — a bare array of edits
// or {"edits": [...]} — applies it as one scenario batch over the cube,
// and returns the scenario's layered view for querying.
func applyScenarioScript(c *olap.Cube, path string) (*olap.Cube, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var edits []olap.ScenarioEdit
	if err := json.Unmarshal(data, &edits); err != nil {
		var wrapped struct {
			Edits []olap.ScenarioEdit `json:"edits"`
		}
		if err2 := json.Unmarshal(data, &wrapped); err2 != nil {
			return nil, fmt.Errorf("scenario script %s: %w", path, err)
		}
		edits = wrapped.Edits
	}
	s, err := olap.NewScenario("cli", c)
	if err != nil {
		return nil, err
	}
	if _, err := s.Apply(edits); err != nil {
		return nil, err
	}
	view, _, err := s.View()
	if err != nil {
		return nil, err
	}
	info := s.Info()
	fmt.Fprintf(os.Stderr, "whatif: scenario script applied: %d cells overridden, %d new members\n",
		info.CellsOverridden, info.NewMembers)
	return view, nil
}

func openCube(paper, wf bool, load string, chunked bool) (*olap.Cube, error) {
	switch {
	case load != "":
		var chunkDims []int
		if chunked {
			chunkDims = []int{}
		}
		return workload.LoadFile(load, chunkDims)
	case wf:
		w, err := olap.NewWorkforce(olap.WorkforceDefault())
		if err != nil {
			return nil, err
		}
		return w.Cube, nil
	case paper:
		if chunked {
			return olap.PaperWarehouseChunked(), nil
		}
		return olap.PaperWarehouse(), nil
	default:
		return nil, fmt.Errorf("choose a cube source: -paper, -workforce or -load FILE")
	}
}

func repl(r io.Reader, run func(string)) {
	fmt.Println("whatif: enter extended-MDX queries terminated by ';' (Ctrl-D to exit)")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			buf.WriteString(line[:i])
			run(buf.String())
			buf.Reset()
			buf.WriteString(line[i+1:])
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	if strings.TrimSpace(buf.String()) != "" {
		run(buf.String())
	}
}
