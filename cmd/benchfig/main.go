// Command benchfig regenerates the paper's evaluation figures (§6) as
// data series printed to stdout, plus the ablation studies listed in
// DESIGN.md. Absolute numbers differ from the paper's 2008 Essbase
// testbed; the shapes (linearity, who wins, where curves converge or
// plateau) are the reproduction target — see EXPERIMENTS.md.
//
// Usage:
//
//	benchfig -fig 11            # perspectives vs. query time (§6.1)
//	benchfig -fig 12            # chunk co-location vs. query time (§6.2)
//	benchfig -fig 13            # varying members vs. query time (§6.3)
//	benchfig -fig overlay-kernel  # overlay write path: MemStore vs chunk-native
//	benchfig -fig rle-scan        # run-encoded chunks vs per-cell relocation
//	benchfig -fig obs-overhead    # trace-retention cost on the traced replay
//	benchfig -fig ablation-pebble | ablation-mode | ablation-rep | ablation-compress
//	benchfig -fig all
//	benchfig -fig 11 -employees 20250 -accounts 100 -scenarios 5  # paper scale
package main

import (
	"flag"
	"fmt"
	"os"

	"whatifolap/internal/bench"
	"whatifolap/internal/simdisk"
	"whatifolap/internal/workload"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 11, 12, 13, parallel-scan, overlay-kernel, rle-scan, obs-overhead, ablation-pebble, ablation-mode, ablation-rep, ablation-compress, all")
		reps      = flag.Int("reps", 3, "repetitions per point (fastest wins)")
		employees = flag.Int("employees", 0, "workforce scale override")
		accounts  = flag.Int("accounts", 0, "accounts override")
		scenarios = flag.Int("scenarios", 0, "scenarios override")
		seed      = flag.Int64("seed", 0, "workload seed override")
	)
	flag.Parse()

	cfg := workload.ConfigDefault()
	if *employees > 0 {
		cfg.Employees = *employees
	}
	if *accounts > 0 {
		cfg.Accounts = *accounts
	}
	if *scenarios > 0 {
		cfg.Scenarios = *scenarios
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	needWorkforce := map[string]bool{
		"11": true, "13": true, "parallel-scan": true, "overlay-kernel": true,
		"obs-overhead":    true,
		"ablation-pebble": true, "ablation-mode": true,
		"ablation-rep": true, "ablation-compress": true, "all": true,
	}
	var w *workload.Workforce
	if needWorkforce[*fig] {
		fmt.Fprintf(os.Stderr, "benchfig: generating workforce (%d employees, %d accounts, %d scenarios)...\n",
			cfg.Employees, cfg.Accounts, cfg.Scenarios)
		var err error
		w, err = workload.NewWorkforce(cfg)
		if err != nil {
			fatal(err)
		}
	}

	switch *fig {
	case "11":
		fig11(w, *reps)
	case "12":
		fig12(*reps)
	case "13":
		fig13(w, *reps)
	case "parallel-scan":
		parallelScan(w, *reps)
	case "overlay-kernel":
		overlayKernel(w, *reps)
	case "ablation-pebble":
		ablationPebble(w)
	case "ablation-mode":
		ablationMode(w, *reps)
	case "ablation-rep":
		ablationRep(w, *reps)
	case "ablation-compress":
		ablationCompress(w, *reps)
	case "rle-scan":
		// rle-scan generates its own validity-window cube (FlatMonths,
		// period-fastest chunks), so the shared workforce is not used.
		rleScan(*reps)
	case "obs-overhead":
		obsOverhead(w, *reps)
	case "all":
		fig11(w, *reps)
		fig12(*reps)
		fig13(w, *reps)
		parallelScan(w, *reps)
		overlayKernel(w, *reps)
		ablationPebble(w)
		ablationMode(w, *reps)
		ablationRep(w, *reps)
		ablationCompress(w, *reps)
		rleScan(*reps)
		obsOverhead(w, *reps)
	default:
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
}

func fig11(w *workload.Workforce, reps int) {
	fmt.Println("# Fig 11 — number of perspectives vs. query time (§6.1)")
	fmt.Println("# query over all changing employees; strategies: Multiple MDX simulation,")
	fmt.Println("# direct static, direct dynamic forward")
	fmt.Println("perspectives,multiple_mdx_ms,static_ms,forward_ms,sim_chunk_reads,static_chunk_reads")
	rows, err := bench.Fig11(w, 12, reps)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%d,%.3f,%.3f,%.3f,%d,%d\n",
			r.Perspectives, r.MultipleMS, r.StaticMS, r.ForwardMS, r.SimChunkReads, r.StaticChunkReads)
	}
	fmt.Println()
}

func fig12(reps int) {
	fmt.Println("# Fig 12 — related-chunk co-location vs. query time (§6.2)")
	fmt.Println("# single employee with two instances, dynamic forward, 4 perspectives;")
	fmt.Println("# separation grown in multiples of the base; disk cost from the seek model")
	fmt.Println("multiple,separation_chunks,total_chunks,disk_ms,wall_ms")
	rows, err := bench.Fig12(bench.Fig12Defaults(), reps)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%d,%d,%d,%.3f,%.3f\n", r.Multiple, r.SeparationChunks, r.TotalChunks, r.DiskMS, r.WallMS)
	}
	fmt.Println()
}

func fig13(w *workload.Workforce, reps int) {
	fmt.Println("# Fig 13 — varying member instances vs. query time (§6.3)")
	fmt.Println("# static, 4 perspectives {Jan,Apr,Jul,Oct}, scope grown 50..250")
	fmt.Println("members,wall_ms,instances,chunk_reads")
	rows, err := bench.Fig13(w, 50, 250, reps)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%d,%.3f,%d,%d\n", r.Members, r.WallMS, r.Instances, r.ChunksRead)
	}
	fmt.Println()
}

func parallelScan(w *workload.Workforce, reps int) {
	fmt.Println("# Parallel scan — scan workers vs. query time")
	fmt.Println("# dynamic forward over all changing employees, 4 perspectives {Jan,Apr,Jul,Oct};")
	fmt.Println("# the scan fans out over independent merge groups, speedup relative to 1 worker")
	fmt.Println("workers,wall_ms,speedup,merge_groups,subtasks,chunk_reads")
	rows, err := bench.ParallelScan(w, []int{1, 2, 4, 8}, reps)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%d,%.3f,%.2f,%d,%d,%d\n", r.Workers, r.WallMS, r.Speedup, r.MergeGroups, r.Subtasks, r.ChunkReads)
	}
	fmt.Println()
}

func rleScan(reps int) {
	fmt.Println("# RLE scan — run-encoded chunks vs per-cell relocation")
	fmt.Println("# validity-window cube (FlatMonths workforce, period-fastest chunks);")
	fmt.Println("# serial forward over all changing employees, 4 perspectives {Jan,Apr,Jul,Oct};")
	fmt.Println("# only the run-encoded row uses the run kernel — the others measure the")
	fmt.Println("# unchanged per-cell path")
	cfg := bench.RleScanConfig()
	fmt.Fprintf(os.Stderr, "benchfig: generating flat-months workforce (%d employees)...\n", cfg.Employees)
	w, err := workload.NewWorkforce(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println("representation,store_bytes,dense_chunks,sparse_chunks,run_chunks,wall_ms,scan_ms,cells_relocated,cells_per_sec")
	rows, err := bench.RleScan(w, reps)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%s,%d,%d,%d,%d,%.3f,%.3f,%d,%.0f\n",
			r.Representation, r.StoreBytes, r.DenseChunks, r.SparseChunks, r.RunChunks,
			r.WallMS, r.ScanMS, r.CellsRelocated, r.CellsPerSec)
	}
	fmt.Println()
}

func overlayKernel(w *workload.Workforce, reps int) {
	fmt.Println("# Overlay kernel — relocation write path: legacy MemStore vs chunk-native")
	fmt.Println("# identical relocation stream (dynamic forward over all changing employees,")
	fmt.Println("# 4 perspectives {Jan,Apr,Jul,Oct}) replayed into each overlay store")
	fmt.Println("kernel,cells,wall_ms,cells_per_sec,allocs_per_cell,steady_allocs_per_cell")
	rows, err := bench.RelocationKernel(w, reps)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%s,%d,%.3f,%.0f,%.4f,%.4f\n",
			r.Kernel, r.Cells, r.WallMS, r.CellsPerSec, r.AllocsPerCell, r.SteadyAllocsPerCell)
	}
	fmt.Println()
}

func obsOverhead(w *workload.Workforce, reps int) {
	fmt.Println("# Obs overhead — tail-sampled trace retention on the traced replay")
	fmt.Println("# steady-state traced relocation replay plus one MaybeRetain per op:")
	fmt.Println("# nil ring (retention off), 4MiB ring at 1-in-64 sampling, retain-everything")
	fmt.Println("variant,cells,wall_ms,allocs_per_op,vs_baseline")
	rows, err := bench.ObsOverhead(w, reps)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%s,%d,%.3f,%.2f,%.3f\n", r.Variant, r.Cells, r.WallMS, r.AllocsPerOp, r.VsBaseline)
	}
	fmt.Println()
}

func ablationPebble(w *workload.Workforce) {
	fmt.Println("# Ablation — chunk read order (§5.2, Lemma 5.1)")
	fmt.Println("order,peak_resident_chunks,disk_ms,seek_chunks")
	rows, err := bench.AblationPebbling(w, simdisk.DefaultModel())
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%s,%d,%.3f,%d\n", r.Order, r.PeakChunks, r.DiskMS, r.SeekChunks)
	}
	fmt.Println()
}

func ablationMode(w *workload.Workforce, reps int) {
	fmt.Println("# Ablation — visual vs. non-visual aggregate evaluation (§3.3)")
	fmt.Println("mode,wall_ms")
	rows, err := bench.AblationMode(w, 50, reps)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%s,%.3f\n", r.Mode, r.WallMS)
	}
	fmt.Println()
}

func ablationRep(w *workload.Workforce, reps int) {
	fmt.Println("# Ablation — dense vs. sparse chunk representation")
	fmt.Println("representation,store_bytes,query_ms")
	rows, err := bench.AblationChunkRep(w, reps)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%s,%d,%.3f\n", r.Representation, r.StoreBytes, r.QueryMS)
	}
	fmt.Println()
}

func ablationCompress(w *workload.Workforce, reps int) {
	fmt.Println("# Ablation — perspective-cube compression (§8 future work)")
	fmt.Println("representation,bytes,build_ms,read_ms")
	rows, err := bench.AblationCompression(w, reps)
	if err != nil {
		fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%s,%d,%.3f,%.3f\n", r.Representation, r.Bytes, r.BuildMS, r.ReadMS)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfig:", err)
	os.Exit(1)
}
