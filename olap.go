// Package olap is a Go implementation of what-if OLAP queries with
// changing dimensions, after Lakshmanan, Russakovsky and Sashikanth
// (ICDE 2008).
//
// The library models multidimensional cubes whose dimension hierarchies
// change as a function of a parameter dimension (time, location, …):
// a member reclassified under different parents exists as several
// member instances, each with a validity set. What-if queries either
// negate such changes ("WITH PERSPECTIVE", §3.3) or hypothetically
// impose new ones ("WITH CHANGES", §3.4), with static/forward/backward
// semantics and visual/non-visual aggregate evaluation.
//
// Three layers are exposed:
//
//   - the data model: Dimension, Binding, Cube (NewDimension, NewCube,
//     NewChunkedCube);
//   - the what-if algebra: ApplyPerspectives, ApplyChanges, CellValue —
//     cube-to-cube operators (paper §4);
//   - the perspective-cube engine and extended MDX: NewEngine for
//     chunk-backed cubes (paper §5) and Query for the extended-MDX
//     surface (paper §3).
//
// Quickstart:
//
//	c := olap.PaperWarehouse()
//	grid, err := olap.Query(c, `
//	    WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
//	    SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS,
//	           {[PTE].Children} ON ROWS
//	    FROM Warehouse
//	    WHERE ([Location].[NY], [Measures].[Salary])`)
//	fmt.Print(grid)
package olap

import (
	"context"
	"fmt"

	"whatifolap/internal/algebra"
	"whatifolap/internal/chunk"
	"whatifolap/internal/core"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/mdx"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
	"whatifolap/internal/result"
	"whatifolap/internal/scenario"
	"whatifolap/internal/simdisk"
	"whatifolap/internal/trace"
	"whatifolap/internal/workload"
)

// Core model types.
type (
	// Cube is an n-dimensional mapping from member tuples to values.
	Cube = cube.Cube
	// Dimension is a member hierarchy; varying dimensions hold member
	// instances.
	Dimension = dimension.Dimension
	// Member is a node of a dimension hierarchy.
	Member = dimension.Member
	// MemberID identifies a member within its dimension.
	MemberID = dimension.MemberID
	// Binding declares a varying dimension changing over a parameter
	// dimension, with per-instance validity sets.
	Binding = dimension.Binding
	// Store abstracts cube cell storage.
	Store = cube.Store
	// RuleSet defines derived-cell computation (formulas and rollup).
	RuleSet = cube.RuleSet
	// ScopeCond scopes a formula rule to a hierarchy subtree.
	ScopeCond = cube.ScopeCond
)

// What-if query types.
type (
	// Semantics selects static/forward/backward perspective semantics.
	Semantics = perspective.Semantics
	// Mode selects visual or non-visual aggregate evaluation.
	Mode = perspective.Mode
	// Change is one tuple of a positive-scenario relation R(m, o, n, t).
	Change = algebra.Change
	// Transfer is a data-driven scenario: a fraction of matching cells
	// moves between two members (paper §1's salary-reallocation
	// example).
	Transfer = algebra.Transfer
	// Predicate restricts selection (σ) to matching members.
	Predicate = algebra.Predicate
	// Engine evaluates what-if queries over chunked cubes.
	Engine = core.Engine
	// View is a queryable perspective cube.
	View = core.View
	// EngineStats reports the engine's execution profile.
	EngineStats = core.Stats
	// ReadOrder selects the engine's chunk read-order policy.
	ReadOrder = core.ReadOrder
	// ExecContext carries per-execution settings (context, scan
	// workers) into the engine's ExecPerspectiveWith/ExecChangesWith.
	ExecContext = core.ExecContext
	// PhysicalPlan is the engine's inspectable execution plan: pruned
	// relocation targets, merge groups and the chunk read schedule.
	PhysicalPlan = core.PhysicalPlan
	// MergeGroup is one independently scannable partition of a plan.
	MergeGroup = core.MergeGroup
	// RunContext carries per-run settings into Evaluator.RunWith and
	// friends.
	RunContext = mdx.RunContext
	// Grid is a two-axis query result.
	Grid = result.Grid
	// Evaluator runs extended-MDX queries against a cube.
	Evaluator = mdx.Evaluator
	// DiskModel parameterizes the simulated disk.
	DiskModel = simdisk.Model
	// Disk accumulates modeled I/O cost.
	Disk = simdisk.Disk
	// Trace records an execution's span tree with near-zero overhead;
	// thread one through a query with WithTrace or ExecOptions.Trace.
	Trace = trace.Trace
	// TraceSpan is one recorded span (name, duration, attributes).
	TraceSpan = trace.Span
	// SpillStats describes a spilled cube's buffer pool: resident and
	// spilled chunk counts, fault-ins, evictions, and pinned chunks.
	SpillStats = chunk.SpillStats
)

// Scenario workspace types: named, versioned chains of overlay deltas
// over an immutable base cube — the server-side realization of the
// paper's interactive what-if sessions (see internal/scenario).
type (
	// Scenario accumulates edit batches (cell writes, tombstone
	// deletes, hypothetical new members, validity-window edits) as
	// sealed layers over a pinned base cube; queries resolve through
	// the layer chain without copying the base.
	Scenario = scenario.Scenario
	// ScenarioManager owns a set of scenario workspaces: id
	// allocation, lookup, O(layers) forking and discard.
	ScenarioManager = scenario.Manager
	// ScenarioEdit is one edit of an atomic scenario batch.
	ScenarioEdit = scenario.Edit
	// ScenarioInfo is a scenario's summary.
	ScenarioInfo = scenario.Info
	// CellDiff is one cell differing between two scenarios.
	CellDiff = scenario.CellDiff
)

// Scenario edit op names for ScenarioEdit.Op.
const (
	ScenarioOpSet       = scenario.OpSet
	ScenarioOpDelete    = scenario.OpDelete
	ScenarioOpNewMember = scenario.OpNewMember
	ScenarioOpValidity  = scenario.OpValidity
)

// Workload generator types.
type (
	// WorkforceConfig parameterizes the workforce-planning dataset of
	// the paper's evaluation.
	WorkforceConfig = workload.WorkforceConfig
	// Workforce is a generated workforce dataset.
	Workforce = workload.Workforce
	// RetailConfig parameterizes the product/market dataset.
	RetailConfig = workload.RetailConfig
	// Retail is a generated retail dataset.
	Retail = workload.Retail
)

// Perspective semantics (paper §3.3).
const (
	Static           = perspective.Static
	Forward          = perspective.Forward
	ExtendedForward  = perspective.ExtendedForward
	Backward         = perspective.Backward
	ExtendedBackward = perspective.ExtendedBackward
)

// Non-leaf evaluation modes (paper §3.3).
const (
	NonVisual = perspective.NonVisual
	Visual    = perspective.Visual
)

// Engine read-order policies (paper §5.2 and Lemma 5.1).
const (
	OrderPebbling     = core.OrderPebbling
	OrderVaryingFirst = core.OrderVaryingFirst
	OrderVaryingLast  = core.OrderVaryingLast
	OrderCanonical    = core.OrderCanonical
)

// Null is the meaningless cell value ⊥.
var Null = cube.Null

// IsNull reports whether a value is ⊥.
func IsNull(v float64) bool { return cube.IsNull(v) }

// NewDimension creates a dimension. Ordered dimensions can drive
// dynamic (forward/backward) perspective semantics.
func NewDimension(name string, ordered bool) *Dimension {
	return dimension.New(name, ordered)
}

// NewBinding declares that varying changes as a function of param.
// Record instance validity with Binding.SetVS, then register the
// binding with Cube.AddBinding.
func NewBinding(varying, param *Dimension) *Binding {
	return dimension.NewBinding(varying, param)
}

// NewCube creates a sparse in-memory cube over the dimensions.
func NewCube(dims ...*Dimension) *Cube { return cube.New(dims...) }

// NewChunkedCube creates a cube backed by the chunked-array store the
// perspective-cube engine requires. chunkDims gives per-dimension chunk
// edges (clamped to the dimension extent).
func NewChunkedCube(chunkDims []int, dims ...*Dimension) (*Cube, error) {
	extents := make([]int, len(dims))
	for i, d := range dims {
		extents[i] = d.NumLeaves()
	}
	g, err := chunk.NewGeometry(extents, chunkDims)
	if err != nil {
		return nil, err
	}
	return cube.NewWithStore(chunk.NewStore(g), dims...), nil
}

// SpillTo bounds a chunk-backed cube's resident memory: least-recently-
// used chunks are serialized to the given file and faulted back in on
// access — the paper's cube-behind-a-cache configuration (its testbed
// held a 20.2 GB cube behind a 256 MB cache). The cube must be chunk-
// backed (NewChunkedCube, PaperWarehouseChunked, NewWorkforce).
func SpillTo(c *Cube, path string, budgetBytes int) error {
	st, ok := c.Store().(*chunk.Store)
	if !ok {
		return fmt.Errorf("olap: SpillTo requires a chunk-backed cube, got %T", c.Store())
	}
	return st.SpillTo(path, budgetBytes)
}

// EncodeRuns sweeps a chunk-backed cube's resident chunks into the
// run-length-encoded representation where it pays: a chunk converts
// when its bit-identical value runs number at most half its cells.
// Returns how many chunks converted. Reads stay exact (runs decode to
// the original bit patterns) and writes transparently decode first, so
// this is purely a space/scan-speed trade. Queries over run-encoded
// chunks take the engine's run-aware relocation kernel.
func EncodeRuns(c *Cube) (int, error) {
	st, ok := c.Store().(*chunk.Store)
	if !ok {
		return 0, fmt.Errorf("olap: EncodeRuns requires a chunk-backed cube, got %T", c.Store())
	}
	return st.EncodeRunsAll(), nil
}

// CubeSpillStats reports the buffer-pool state of a chunk-backed cube:
// chunk counts on each side of the budget line, fault-ins, evictions,
// and currently pinned chunks. Without a spill tier (no SpillTo call)
// only Resident is populated. Safe to call while queries run.
func CubeSpillStats(c *Cube) (SpillStats, error) {
	st, ok := c.Store().(*chunk.Store)
	if !ok {
		return SpillStats{}, fmt.Errorf("olap: CubeSpillStats requires a chunk-backed cube, got %T", c.Store())
	}
	return st.SpillStats(), nil
}

// NewEngine creates a perspective-cube engine over a chunk-backed cube
// for the named varying dimension.
func NewEngine(c *Cube, varyingDim string) (*Engine, error) {
	return core.New(c, varyingDim)
}

// NewEvaluator creates an extended-MDX evaluator bound to a cube.
func NewEvaluator(c *Cube) *Evaluator { return mdx.NewEvaluator(c) }

// Query parses and runs an extended-MDX query against the cube.
func Query(c *Cube, src string) (*Grid, error) {
	return mdx.NewEvaluator(c).Run(src)
}

// QueryContext is Query under a context: deadlines and cancellation
// are observed at chunk-iteration boundaries in the engine and between
// result rows, so long scans abandon promptly with the context's
// error. This is the entry point the serving layer (cmd/whatifd) and
// the CLI's -timeout flag use.
func QueryContext(ctx context.Context, c *Cube, src string) (*Grid, error) {
	return mdx.NewEvaluator(c).RunContext(ctx, src)
}

// NewScenario creates a standalone scenario workspace over a cube,
// outside any server catalog — apply edits with Scenario.Apply, query
// the layered view with QueryScenario, flatten with
// Scenario.Materialize.
func NewScenario(name string, base *Cube) (*Scenario, error) {
	return scenario.NewLocal(name, base)
}

// NewScenarioManager creates an empty scenario manager.
func NewScenarioManager() *ScenarioManager { return scenario.NewManager() }

// ScenarioDiff computes the cell-by-cell difference between two
// scenarios over the same cube; diff(A, A) is empty.
func ScenarioDiff(a, b *Scenario) ([]CellDiff, error) { return scenario.Diff(a, b) }

// QueryScenario runs an extended-MDX query against the scenario's
// layered view: base chunks resolved through the layer chain, newest
// layer wins, nothing copied.
func QueryScenario(ctx context.Context, s *Scenario, src string) (*Grid, error) {
	view, _, err := s.View()
	if err != nil {
		return nil, err
	}
	q, err := mdx.Parse(src)
	if err != nil {
		return nil, err
	}
	g, _, err := mdx.EvaluateScenario(mdx.RunContext{Ctx: ctx}, view, q)
	return g, err
}

// ExecOptions tunes one query execution.
type ExecOptions struct {
	// Workers bounds the engine's parallel chunk scan: the scan fans
	// out over independent merge groups on up to Workers goroutines.
	// 0 or 1 scans serially in the plan's global read order.
	Workers int
	// Trace, when non-nil, records the execution's span tree into the
	// given recorder (parse, plan, per-merge-group scans, spill faults,
	// merge, project). Recording is lock-free and allocation-free; a nil
	// Trace costs nothing.
	Trace *Trace
}

// QueryOptions is QueryContext with execution options: the context and
// the scan-worker bound are threaded through the evaluator into the
// engine for this run only, so one cube can serve differently
// configured queries concurrently.
func QueryOptions(ctx context.Context, c *Cube, src string, opts ExecOptions) (*Grid, error) {
	if opts.Trace != nil {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx = trace.NewContext(ctx, opts.Trace)
	}
	return mdx.NewEvaluator(c).RunWith(mdx.RunContext{Ctx: ctx, Workers: opts.Workers}, src)
}

// NewTrace creates a span recorder holding up to maxSpans spans
// (0 picks the default). One recorder serves one query at a time;
// Reset reuses the buffer for the next.
func NewTrace(maxSpans int) *Trace { return trace.New(maxSpans) }

// WithTrace returns a context that carries the recorder into any query
// run under it: the evaluator and engine record their pipeline spans
// without further wiring. QueryContext(WithTrace(ctx, tr), c, src) is
// the loose-coupling spelling of QueryOptions with ExecOptions.Trace.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return trace.NewContext(ctx, tr)
}

// ExplainAnalyze parses and runs the query under a fresh trace and
// returns the rendered span tree with per-stage totals, alongside the
// grid and engine stats. The MDX surface reaches the same machinery
// with an "EXPLAIN ANALYZE" query prefix.
func ExplainAnalyze(c *Cube, src string) (string, *Grid, EngineStats, error) {
	q, err := mdx.Parse(src)
	if err != nil {
		return "", nil, EngineStats{}, err
	}
	return mdx.NewEvaluator(c).ExplainAnalyze(mdx.RunContext{}, q)
}

// NormalizeQuery canonicalizes extended-MDX source without parsing it:
// comments stripped, whitespace collapsed, keywords upper-cased,
// member names untouched. Queries that tokenize identically normalize
// identically, which makes the result a sound cache key (the query
// service keys its result cache on it).
func NormalizeQuery(src string) (string, error) { return mdx.Normalize(src) }

// ApplyPerspectives runs the negative-scenario pipeline of the algebra
// (σ/Φ/ρ composition, paper Theorem 4.1) on any cube: the result holds
// the relocated leaf cells. Evaluate aggregates with CellValue.
func ApplyPerspectives(c *Cube, varyingDim string, sem Semantics, perspectives []int) (*Cube, error) {
	return algebra.ApplyPerspectives(c, varyingDim, sem, perspectives)
}

// ApplyChanges runs the positive-scenario pipeline (split operator S).
func ApplyChanges(c *Cube, varyingDim string, changes []Change) (*Cube, error) {
	return algebra.ApplyChanges(c, varyingDim, changes)
}

// ApplyTransfer runs a data-driven scenario: Fraction of every matching
// cell's value moves from Transfer.From to Transfer.To along
// Transfer.Dim.
func ApplyTransfer(c *Cube, tr Transfer) (*Cube, error) {
	return algebra.ApplyTransfer(c, tr)
}

// CellValue evaluates one cell of a what-if result under the given
// mode: visual re-aggregates over the transformed cube, non-visual
// retains input aggregates.
func CellValue(input, output *Cube, ids []MemberID, mode Mode) (float64, error) {
	return algebra.CellValue(input, output, ids, mode)
}

// Select applies the σ operator: the sub-cubes of members failing the
// predicate are removed.
func Select(c *Cube, dim string, p Predicate) (*Cube, error) {
	return algebra.Select(c, dim, p)
}

// NewDisk creates a simulated disk for I/O cost modeling; attach it to
// an engine with Engine.AttachDisk.
func NewDisk(m DiskModel) (*Disk, error) { return simdisk.New(m) }

// DefaultDiskModel returns seek-cost parameters shaped like the paper's
// mid-2000s testbed drive.
func DefaultDiskModel() DiskModel { return simdisk.DefaultModel() }

// PaperWarehouse builds the paper's running example (Fig. 1/2): the
// workforce warehouse in which employee Joe is reclassified FTE → PTE →
// Contractor. Backed by a plain in-memory store.
func PaperWarehouse() *Cube { return paperdata.Warehouse() }

// PaperWarehouseChunked is PaperWarehouse over chunked storage, usable
// with NewEngine.
func PaperWarehouseChunked() *Cube { return paperdata.ChunkedWarehouse(nil) }

// NewWorkforce generates the paper's evaluation dataset shape at the
// configured scale.
func NewWorkforce(cfg WorkforceConfig) (*Workforce, error) {
	return workload.NewWorkforce(cfg)
}

// WorkforceDefault returns the default laptop-scale workforce
// configuration (51 departments, 250 changing employees, 12 months).
func WorkforceDefault() WorkforceConfig { return workload.ConfigDefault() }

// WorkforcePaper returns the paper's full dataset scale (121M cells).
func WorkforcePaper() WorkforceConfig { return workload.ConfigPaper() }

// NewRetailByTime generates the product/market dataset with products
// re-bundled over time.
func NewRetailByTime(cfg RetailConfig) (*Retail, error) {
	return workload.NewRetailByTime(cfg)
}

// NewRetailByMarket generates the dataset with bundling varying across
// markets (an unordered parameter dimension).
func NewRetailByMarket(cfg RetailConfig) (*Retail, error) {
	return workload.NewRetailByMarket(cfg)
}

// RetailDefault returns the default retail configuration.
func RetailDefault() RetailConfig { return workload.ConfigRetail() }
